#include "trace/attribution.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "trace/category.hpp"
#include "trace/collector.hpp"

namespace {

using namespace ncar;
using trace::Attribution;
using trace::Category;
using trace::Collector;

double fold_rows(const Attribution& a) {
  double s = 0;
  for (const auto& row : a.rows) s += row.ticks;
  return s;
}

TEST(Attribution, EmitsEveryCategoryInEnumOrder) {
  Collector c;
  const Attribution a = trace::build_attribution(c);
  ASSERT_EQ(a.rows.size(), static_cast<std::size_t>(trace::kCategoryCount));
  for (int i = 0; i < trace::kCategoryCount; ++i) {
    EXPECT_EQ(a.rows[static_cast<std::size_t>(i)].category,
              static_cast<Category>(i));
  }
  EXPECT_EQ(a.rows.back().category, Category::Other);
}

TEST(Attribution, EmptyTrackHasZeroFractions) {
  Collector c;
  const Attribution a = trace::build_attribution(c);
  EXPECT_DOUBLE_EQ(a.total_ticks, 0.0);
  for (const auto& row : a.rows) {
    EXPECT_DOUBLE_EQ(row.ticks, 0.0);
    EXPECT_DOUBLE_EQ(row.fraction, 0.0);
  }
}

TEST(Attribution, RowsFoldExactlyToTotal) {
  Collector c;
  // Deliberately awkward magnitudes: the chronological total and the
  // per-category grouping round differently in the last ulp.
  const double charges[] = {0.1, 1e9, 0.3, 7.7e-3, 1e8, 0.09};
  const Category cats[] = {Category::VectorAdd, Category::VectorMul,
                           Category::Scalar,    Category::BankConflict,
                           Category::VectorMul, Category::Scalar};
  for (int i = 0; i < 6; ++i) {
    c.count_total(charges[i]);
    c.count(cats[i], charges[i]);
  }
  const Attribution a = trace::build_attribution(c);
  EXPECT_EQ(a.total_ticks, c.total_ticks());
  EXPECT_EQ(fold_rows(a), a.total_ticks);  // bit-exact, not NEAR
}

TEST(Attribution, OtherHoldsUncategorisedChargesPlusResidue) {
  Collector c;
  c.count_total(10.0);
  c.count(Category::VectorAdd, 6.0);
  // 4.0 ticks were charged without a category.
  const Attribution a = trace::build_attribution(c);
  EXPECT_DOUBLE_EQ(a.rows.back().ticks, 4.0);
  EXPECT_EQ(fold_rows(a), 10.0);
}

TEST(Attribution, FractionsSumToOneForNonEmptyTrack) {
  Collector c;
  c.count_total(8.0);
  c.count(Category::VectorAdd, 6.0);
  c.count(Category::Scalar, 2.0);
  const Attribution a = trace::build_attribution(c);
  double f = 0;
  for (const auto& row : a.rows) f += row.fraction;
  EXPECT_NEAR(f, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.rows[static_cast<std::size_t>(Category::VectorAdd)].fraction,
                   0.75);
}

TEST(Attribution, FoldsMultipleTracks) {
  Collector a, b;
  a.count_total(3.0);
  a.count(Category::Scalar, 3.0);
  b.count_total(5.0);
  b.count(Category::Scalar, 4.0);
  b.count(Category::CacheMiss, 1.0);
  const Collector* tracks[] = {&a, &b};
  const Attribution folded = trace::build_attribution(
      std::span<const Collector* const>(tracks));
  EXPECT_DOUBLE_EQ(folded.total_ticks, 8.0);
  EXPECT_DOUBLE_EQ(
      folded.rows[static_cast<std::size_t>(Category::Scalar)].ticks, 7.0);
  EXPECT_DOUBLE_EQ(
      folded.rows[static_cast<std::size_t>(Category::CacheMiss)].ticks, 1.0);
  EXPECT_EQ(fold_rows(folded), folded.total_ticks);
}

}  // namespace
