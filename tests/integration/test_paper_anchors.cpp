// Paper-anchor regression tests: the handful of *numeric* results the
// paper states in prose, pinned with generous tolerances so model
// refactoring cannot silently drift away from the reproduced paper.
// (The bench binaries print the full tables; these tests guard the
// anchors in CI.)

#include <gtest/gtest.h>

#include "ccm2/model.hpp"
#include "fft/style_bench.hpp"
#include "machines/comparator.hpp"
#include "ocean/mom.hpp"
#include "ocean/pop.hpp"
#include "radabs/radabs.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

namespace {

using namespace ncar;

TEST(PaperAnchors, Radabs866EquivMflops) {
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  const auto r = radabs::run_radabs_standard(sx4);
  EXPECT_NEAR(r.equiv_mflops, 865.9, 0.2 * 865.9);
}

TEST(PaperAnchors, VfftAboutTenTimesRfft) {
  auto cfg = sxs::MachineConfig::sx4_benchmarked();
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  const auto r = fft::run_rfft(node.cpu(0), 256, 2000, 3);
  const auto v = fft::run_vfft(node.cpu(0), 256, 500, 3);
  const double ratio = v.mflops / r.mflops;
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(PaperAnchors, Ccm2T170At32Cpus24Gflops) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2Config c;
  c.res = ccm2::t170l18();
  c.active_levels = 1;
  ccm2::Ccm2 model(c, node);
  const double g = model.sustained_equiv_gflops(32, 1);
  EXPECT_NEAR(g, 24.0, 0.25 * 24.0);
}

TEST(PaperAnchors, Ccm2YearAtT42Near1327Seconds) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  iosim::DiskSystem disk;
  ccm2::Ccm2Config c;
  c.res = ccm2::t42l18();
  c.active_levels = 1;
  ccm2::Ccm2 model(c, node);
  const double per_step = model.measure_step_seconds(32, 2);
  const double year =
      per_step * 72 * 365 + model.write_history(disk, 32).value() * 365;
  EXPECT_NEAR(year, 1327.53, 0.2 * 1327.53);
}

TEST(PaperAnchors, EnsembleDegradationNear189Percent) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  const double ratio =
      node.contention_factor(32) / node.contention_factor(4);
  EXPECT_NEAR(100.0 * (ratio - 1.0), 1.89, 0.4);
}

TEST(PaperAnchors, MomTable7SingleCpuTime) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ocean::Mom mom(ocean::MomConfig::high_resolution(), node);
  const double t350 = mom.measure_step_seconds(1, 10) * 350.0;
  EXPECT_NEAR(t350, 1861.25, 0.2 * 1861.25);
}

TEST(PaperAnchors, Pop537Mflops) {
  auto cfg = sxs::MachineConfig::sx4_benchmarked();
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  ocean::Pop pop(ocean::PopConfig::two_degree(), node);
  EXPECT_NEAR(pop.measure_mflops(3), 537.0, 0.2 * 537.0);
}

TEST(PaperAnchors, ProductClockGives15PercentOnRadabs) {
  // Paper: "an additional 15% performance improvement can be realized
  // with ... an 8.0 ns clock".
  machines::Comparator bench(machines::Comparator::nec_sx4_single());
  auto prod_spec = machines::Comparator::nec_sx4_single();
  prod_spec.cfg.clock_ns = 8.0;
  machines::Comparator prod(prod_spec);
  const double r92 = radabs::run_radabs_standard(bench).equiv_mflops;
  const double r80 = radabs::run_radabs_standard(prod).equiv_mflops;
  EXPECT_NEAR(r80 / r92, 1.15, 0.02);
}

TEST(PaperAnchors, LargerProblemsScaleBetter) {
  // Figure 8's qualitative message.
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  auto efficiency = [&](const ccm2::Resolution& res) {
    ccm2::Ccm2Config c;
    c.res = res;
    c.active_levels = 1;
    ccm2::Ccm2 model(c, node);
    node.reset();
    model.reset();
    const double g1 = model.sustained_equiv_gflops(1, 1);
    node.reset();
    model.reset();
    const double g32 = model.sustained_equiv_gflops(32, 1);
    return g32 / (32.0 * g1);
  };
  const double e42 = efficiency(ccm2::t42l18());
  const double e170 = efficiency(ccm2::t170l18());
  EXPECT_GT(e170, 1.5 * e42);
}

}  // namespace
