// Integration tests across modules: the scenarios the paper's benchmark
// campaign actually exercised, stitched end to end.

#include <gtest/gtest.h>

#include "ccm2/model.hpp"
#include "fpt/elefunt.hpp"
#include "fpt/paranoia.hpp"
#include "iosim/sfs.hpp"
#include "machines/comparator.hpp"
#include "ocean/mom.hpp"
#include "prodload/scheduler.hpp"
#include "radabs/radabs.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"
#include "sxs/resource_block.hpp"

namespace {

using namespace ncar;

// The suite's ordering principle (Dongarra et al., paper section 4):
// start simple, end with applications. Verify the dependency chain: the
// arithmetic is sound, the intrinsics are accurate, therefore RADABS's
// numbers are meaningful, therefore CCM2's physics charge is meaningful.
TEST(SuiteIntegration, CorrectnessGatesPerformance) {
  ASSERT_TRUE(fpt::run_paranoia().all_passed());
  for (const auto& r : fpt::run_elefunt_accuracy(2000)) {
    ASSERT_TRUE(r.passed) << sxs::intrinsic_name(r.func);
  }
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  const auto radabs = radabs::run_radabs_standard(sx4);
  EXPECT_GT(radabs.equiv_mflops, 0.0);
}

// A climate-campaign day: model steps + history write through SFS, with
// the write-back cache absorbing the I/O at XMU speed.
TEST(SuiteIntegration, CampaignDayWithSfsHistory) {
  const auto machine = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(machine);
  ccm2::Ccm2Config c;
  c.res = ccm2::t42l18();
  ccm2::Ccm2 model(c, node);

  iosim::DiskSystem disk;
  iosim::Sfs fs(machine, disk);

  double compute = 0;
  for (int s = 0; s < 12; ++s) compute += model.step(32).total;
  const double io_wait = fs.write(model.history_bytes()).value();
  fs.advance(ncar::Seconds(compute));  // next day overlaps the drain

  // The SFS wait is tiny next to raw disk time.
  EXPECT_LT(io_wait, 0.1 * (model.history_bytes() /
                            disk.streaming_bytes_per_s())
                             .value());
  // And the drain made progress during compute.
  EXPECT_LT(fs.dirty_bytes().value(), model.history_bytes().value());
}

// Resource blocks host the PRODLOAD mix: the batch block takes the CCM2
// jobs, the interactive block stays responsive (its minimum is preserved).
TEST(SuiteIntegration, ResourceBlocksCarryProdloadMix) {
  sxs::ResourceBlockTable blocks(
      32, {{"interactive", 2, 4, sxs::SchedulingPolicy::Interactive},
           {"batch", 0, 28, sxs::SchedulingPolicy::Fifo}});

  // A PRODLOAD job: T106 on 8, two T42s on 2 each, HIPPI on 1 = 13 CPUs.
  std::vector<sxs::Allocation> job;
  for (int cpus : {8, 2, 2, 1}) {
    auto a = blocks.allocate("batch", cpus);
    ASSERT_TRUE(a.valid());
    job.push_back(a);
  }
  // Two such jobs fit the batch block (26 <= 28)...
  std::vector<sxs::Allocation> job2;
  for (int cpus : {8, 2, 2, 1}) {
    auto a = blocks.allocate("batch", cpus);
    ASSERT_TRUE(a.valid());
    job2.push_back(a);
  }
  // ...a third does not start (batch is at 26/28, first component needs 8).
  EXPECT_FALSE(blocks.allocate("batch", 8).valid());
  // The interactive minimum survived throughout.
  EXPECT_GE(blocks.available(0), 2);
  for (auto& a : job) blocks.release(a);
  for (auto& a : job2) blocks.release(a);
}

// Checkpoint a MOM run mid-flight, "migrate" it to a fresh node (as NQS
// restart would after a shutdown), and verify the trajectory continues
// identically while the simulated clocks differ per machine.
TEST(SuiteIntegration, MomRestartOnFreshNode) {
  ocean::MomConfig cfg = ocean::MomConfig::low_resolution();
  sxs::Node node_a(sxs::MachineConfig::sx4_benchmarked());
  ocean::Mom a(cfg, node_a);
  for (int s = 0; s < 6; ++s) a.step(8);
  const auto snap = a.checkpoint();
  for (int s = 0; s < 4; ++s) a.step(8);

  sxs::Node node_b(sxs::MachineConfig::sx4_product());  // faster clock
  ocean::Mom b(cfg, node_b);
  b.restore(snap);
  double t_b = 0;
  for (int s = 0; s < 4; ++s) t_b += b.step(8);
  EXPECT_DOUBLE_EQ(a.checksum(), b.checksum());
  EXPECT_GT(t_b, 0.0);
}

// The PRODLOAD scheduler with service times derived from the live models —
// the full pipeline the prodload bench uses, at test scale.
TEST(SuiteIntegration, SchedulerConsumesModelServiceTimes) {
  const auto machine = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(machine);
  ccm2::Ccm2Config c;
  c.res = ccm2::t42l18();
  c.active_levels = 1;
  ccm2::Ccm2 model(c, node);
  node.reset();
  const double t42_1day = model.measure_step_seconds(2, 2) *
                          c.res.steps_per_day();

  prodload::Scheduler sched(machine.cpus_per_node,
                            machine.bank_contention_per_cpu);
  prodload::Sequence seq{
      "seq",
      {prodload::Job{"job",
                     {{"ccm2-a", 2, Seconds(t42_1day)},
                      {"ccm2-b", 2, Seconds(t42_1day)}}}}};
  const auto r = sched.run({seq});
  // Both components run concurrently; makespan ~ one job + contention.
  EXPECT_GT(r.makespan.value(), t42_1day);
  EXPECT_LT(r.makespan.value(), 1.05 * t42_1day);
}

}  // namespace
