// Integration-level determinism of the host-parallel execution engine:
// full application models (CCM2, MOM) and multi-node Machine regions must
// produce bit-identical simulated results under the sequential and threaded
// execution policies.

#include <gtest/gtest.h>

#include "ccm2/model.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ocean/mom.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

namespace {

using namespace ncar;
using sxs::Cpu;
using sxs::ExecutionPolicy;
using sxs::MachineConfig;

TEST(PolicyDeterminism, Ccm2T42StepBitIdentical) {
  ccm2::Ccm2Config c;
  c.res = ccm2::t42l18();
  c.active_levels = 1;  // keep the host numerics cheap; charging is full-size

  ThreadPool pool(4);
  sxs::Node node_seq(MachineConfig::sx4_benchmarked(),
                     ExecutionPolicy::Sequential);
  sxs::Node node_thr(MachineConfig::sx4_benchmarked(),
                     ExecutionPolicy::Threaded);
  node_thr.set_thread_pool(&pool);

  ccm2::Ccm2 seq(c, node_seq);
  ccm2::Ccm2 thr(c, node_thr);

  for (int step = 0; step < 2; ++step) {
    const auto ts = seq.step(8);
    const auto tt = thr.step(8);
    EXPECT_EQ(ts.serial, tt.serial);
    EXPECT_EQ(ts.spectral_local, tt.spectral_local);
    EXPECT_EQ(ts.synthesis, tt.synthesis);
    EXPECT_EQ(ts.ffts, tt.ffts);
    EXPECT_EQ(ts.grid, tt.grid);
    EXPECT_EQ(ts.analysis, tt.analysis);
    EXPECT_EQ(ts.slt, tt.slt);
    EXPECT_EQ(ts.physics, tt.physics);
    EXPECT_EQ(ts.total, tt.total);
  }
  EXPECT_EQ(node_seq.elapsed_seconds(), node_thr.elapsed_seconds());
  EXPECT_EQ(seq.checksum(), thr.checksum());
  for (int i = 0; i < node_seq.cpu_count(); ++i) {
    EXPECT_EQ(node_seq.cpu(i).cycles(), node_thr.cpu(i).cycles());
    EXPECT_EQ(node_seq.cpu(i).equiv_flops(), node_thr.cpu(i).equiv_flops());
  }
}

TEST(PolicyDeterminism, MomStepBitIdentical) {
  ThreadPool pool(4);
  sxs::Node node_seq(MachineConfig::sx4_benchmarked(),
                     ExecutionPolicy::Sequential);
  sxs::Node node_thr(MachineConfig::sx4_benchmarked(),
                     ExecutionPolicy::Threaded);
  node_thr.set_thread_pool(&pool);

  ocean::Mom seq(ocean::MomConfig::low_resolution(), node_seq);
  ocean::Mom thr(ocean::MomConfig::low_resolution(), node_thr);

  for (int step = 0; step < 2; ++step) {
    EXPECT_EQ(seq.step(8), thr.step(8));
  }
  EXPECT_EQ(node_seq.elapsed_seconds(), node_thr.elapsed_seconds());
  EXPECT_EQ(seq.mean_temperature(), thr.mean_temperature());
  for (int i = 0; i < node_seq.cpu_count(); ++i) {
    EXPECT_EQ(node_seq.cpu(i).cycles(), node_thr.cpu(i).cycles());
  }
}

void charge_rank_work(Cpu& cpu, int node, int rank) {
  Rng rng(0xabc000ull + 97ull * static_cast<std::uint64_t>(node) +
          static_cast<std::uint64_t>(rank));
  sxs::VectorOp op;
  op.n = 1000 + static_cast<long>(rng.next_below(8000));
  op.flops_per_elem = 2.0 + rng.next_double() * 4.0;
  op.load_words = 2.0;
  op.store_words = 1.0;
  op.pipe_groups = 2;
  cpu.vec(op, 1 + static_cast<long>(rng.next_below(4)));
}

TEST(PolicyDeterminism, MachineParallelAndExchangeBitIdentical) {
  ThreadPool pool(4);
  sxs::Machine seq(MachineConfig::sx4_multinode(4),
                   ExecutionPolicy::Sequential);
  sxs::Machine thr(MachineConfig::sx4_multinode(4),
                   ExecutionPolicy::Threaded);
  thr.set_thread_pool(&pool);

  const auto body = [](int node, int rank, Cpu& cpu) {
    charge_rank_work(cpu, node, rank);
  };
  for (int rep = 0; rep < 10; ++rep) {
    EXPECT_EQ(seq.parallel(4, 8, body), thr.parallel(4, 8, body));
    EXPECT_EQ(seq.exchange(4, ncar::Bytes(3.2e8)),
              thr.exchange(4, ncar::Bytes(3.2e8)));
  }
  EXPECT_EQ(seq.elapsed_seconds(), thr.elapsed_seconds());
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(seq.node(n).elapsed_seconds(), thr.node(n).elapsed_seconds());
    for (int i = 0; i < seq.node(n).cpu_count(); ++i) {
      EXPECT_EQ(seq.node(n).cpu(i).cycles(), thr.node(n).cpu(i).cycles());
    }
  }
}

TEST(PolicyDeterminism, ResetAndExternalLoadInteractWithThreadedPath) {
  ThreadPool pool(4);
  sxs::Node seq(MachineConfig::sx4_benchmarked(),
                ExecutionPolicy::Sequential);
  sxs::Node thr(MachineConfig::sx4_benchmarked(), ExecutionPolicy::Threaded);
  thr.set_thread_pool(&pool);

  const auto body = [](int rank, Cpu& cpu) { charge_rank_work(cpu, 0, rank); };

  // Region under external load, then reset, then a clean region: the
  // threaded node must mirror the sequential one through the whole cycle.
  seq.set_external_active_cpus(16);
  thr.set_external_active_cpus(16);
  EXPECT_EQ(seq.parallel(8, body), thr.parallel(8, body));

  seq.reset();
  thr.reset();
  EXPECT_EQ(seq.elapsed_seconds(), 0.0);
  EXPECT_EQ(thr.elapsed_seconds(), 0.0);
  EXPECT_EQ(seq.external_active_cpus(), 0);
  EXPECT_EQ(thr.external_active_cpus(), 0);

  // Post-reset regions are uncontended again, identically under both.
  const double ts = seq.parallel(8, body);
  const double tt = thr.parallel(8, body);
  EXPECT_EQ(ts, tt);
  for (int i = 0; i < seq.cpu_count(); ++i) {
    EXPECT_EQ(seq.cpu(i).cycles(), thr.cpu(i).cycles());
  }
}

}  // namespace
