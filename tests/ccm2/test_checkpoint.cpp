// Checkpoint/restart (paper section 2.6.2): "NQS batch jobs can be
// checkpointed... No special programming is required." The library-level
// guarantee under test: restoring a checkpoint and continuing produces a
// bit-identical trajectory.

#include <gtest/gtest.h>

#include "ccm2/model.hpp"
#include "common/error.hpp"
#include "iosim/sfs.hpp"
#include "ocean/mom.hpp"
#include "sxs/machine_config.hpp"

namespace {

using namespace ncar;

ccm2::Ccm2Config small_ccm2() {
  ccm2::Ccm2Config c;
  c.res.name = "T21-test";
  c.res.truncation = 21;
  c.res.nlat = 32;
  c.res.nlon = 64;
  c.res.nlev = 4;
  c.res.dt_seconds = 1800.0;
  c.active_levels = 2;
  return c;
}

TEST(Ccm2Checkpoint, RestartContinuationIsBitIdentical) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2 model(small_ccm2(), node);
  for (int s = 0; s < 10; ++s) model.step(4);
  const auto snap = model.checkpoint();
  for (int s = 0; s < 5; ++s) model.step(4);
  const double want = model.checksum();
  const long want_steps = model.steps_taken();

  model.restore(snap);
  EXPECT_EQ(model.steps_taken(), 10);
  for (int s = 0; s < 5; ++s) model.step(4);
  EXPECT_DOUBLE_EQ(model.checksum(), want);
  EXPECT_EQ(model.steps_taken(), want_steps);
}

TEST(Ccm2Checkpoint, RestoreIntoFreshModelMatches) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2 a(small_ccm2(), node);
  for (int s = 0; s < 7; ++s) a.step(2);
  const auto snap = a.checkpoint();

  ccm2::Ccm2 b(small_ccm2(), node);
  b.restore(snap);
  EXPECT_DOUBLE_EQ(a.checksum(), b.checksum());
  a.step(2);
  b.step(2);
  EXPECT_DOUBLE_EQ(a.checksum(), b.checksum());
}

TEST(Ccm2Checkpoint, MismatchedConfigurationRejected) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2 model(small_ccm2(), node);
  auto snap = model.checkpoint();
  snap.pop_back();
  EXPECT_THROW(model.restore(snap), ncar::precondition_error);
}

TEST(Ccm2Checkpoint, CheckpointBytesCoverFullState) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2Config c;
  c.res = ccm2::t42l18();
  ccm2::Ccm2 model(c, node);
  // An 18-level T42 checkpoint: a few MB (spectral + grid fields).
  EXPECT_GT(model.checkpoint_bytes(), 2e6);
  EXPECT_LT(model.checkpoint_bytes(), 500e6);
}

TEST(Ccm2Checkpoint, CheckpointWriteThroughSfsIsFast) {
  // The checkpoint lands in the XMU cache at far better than disk speed —
  // why the SX-4's checkpoint/restart was operationally painless.
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2Config c;
  c.res = ccm2::t42l18();
  ccm2::Ccm2 model(c, node);
  iosim::DiskSystem disk;
  iosim::Sfs fs(sxs::MachineConfig::sx4_benchmarked(), disk);
  const double wait =
      fs.write(ncar::Bytes(model.checkpoint_bytes())).value();
  EXPECT_LT(wait, 0.1);
}

TEST(MomCheckpoint, RestartContinuationIsBitIdentical) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  for (int s = 0; s < 8; ++s) mom.step(2);
  const auto snap = mom.checkpoint();
  for (int s = 0; s < 4; ++s) mom.step(2);
  const double want = mom.checksum();

  mom.restore(snap);
  for (int s = 0; s < 4; ++s) mom.step(2);
  EXPECT_DOUBLE_EQ(mom.checksum(), want);
}

TEST(MomCheckpoint, SizeMatchesDeclaredBytes) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  const auto snap = mom.checkpoint();
  EXPECT_DOUBLE_EQ(mom.checkpoint_bytes(), 8.0 * snap.size());
}

TEST(MomCheckpoint, MismatchedSizeRejected) {
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  auto snap = mom.checkpoint();
  snap.push_back(0.0);
  EXPECT_THROW(mom.restore(snap), ncar::precondition_error);
}

}  // namespace
