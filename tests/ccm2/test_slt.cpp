#include "ccm2/slt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "spectral/gauss.hpp"

namespace {

using namespace ncar;
using ccm2::SemiLagrangian;

class SltTest : public ::testing::Test {
protected:
  static constexpr int kLon = 64;
  static constexpr int kLat = 32;
  static constexpr double kRadius = 6.371e6;
  spectral::GaussNodes nodes = spectral::gauss_legendre(kLat);
  SemiLagrangian slt{nodes, kLon, kRadius};

  Array2D<double> blob() const {
    Array2D<double> q(kLon, kLat);
    for (std::size_t j = 0; j < kLat; ++j) {
      const double phi = std::asin(nodes.mu[j]);
      for (std::size_t i = 0; i < kLon; ++i) {
        const double lam = 2.0 * M_PI * static_cast<double>(i) / kLon;
        q(i, j) = std::exp(-8.0 * ((lam - M_PI) * (lam - M_PI) + phi * phi));
      }
    }
    return q;
  }
};

TEST_F(SltTest, ZeroWindIsIdentity) {
  auto q = blob();
  Array2D<double> u(kLon, kLat), v(kLon, kLat), out(kLon, kLat);
  slt.advect(q, u, v, 1200.0, out);
  for (std::size_t k = 0; k < q.size(); ++k) {
    EXPECT_NEAR(out.flat()[k], q.flat()[k], 1e-12);
  }
}

TEST_F(SltTest, UniformZonalWindShiftsByExactlyOneCell) {
  auto q = blob();
  Array2D<double> u(kLon, kLat), v(kLon, kLat), out(kLon, kLat);
  const double dlam = 2.0 * M_PI / kLon;
  const double dt = 1200.0;
  for (std::size_t j = 0; j < kLat; ++j) {
    const double cphi = std::cos(std::asin(nodes.mu[j]));
    for (std::size_t i = 0; i < kLon; ++i) {
      u(i, j) = dlam * kRadius * cphi / dt;  // one grid cell per step
    }
  }
  slt.advect(q, u, v, dt, out);
  for (std::size_t j = 0; j < kLat; ++j) {
    for (std::size_t i = 0; i < kLon; ++i) {
      EXPECT_NEAR(out(i, j), q((i + kLon - 1) % kLon, j), 1e-9);
    }
  }
}

TEST_F(SltTest, FullRevolutionReturnsBlob) {
  // Advect one full rotation in kLon steps of one cell each; the
  // interpolation at exact grid points is lossless.
  auto q = blob();
  const auto q0 = q;
  Array2D<double> u(kLon, kLat), v(kLon, kLat), out(kLon, kLat);
  const double dlam = 2.0 * M_PI / kLon;
  const double dt = 600.0;
  for (std::size_t j = 0; j < kLat; ++j) {
    const double cphi = std::cos(std::asin(nodes.mu[j]));
    for (std::size_t i = 0; i < kLon; ++i) {
      u(i, j) = dlam * kRadius * cphi / dt;
    }
  }
  for (int s = 0; s < kLon; ++s) {
    slt.advect(q, u, v, dt, out);
    std::swap(q, out);
  }
  for (std::size_t k = 0; k < q.size(); ++k) {
    EXPECT_NEAR(q.flat()[k], q0.flat()[k], 1e-9);
  }
}

TEST_F(SltTest, ShapePreservingNoNewExtrema) {
  auto q = blob();
  double qmin = 1e300, qmax = -1e300;
  for (double v : q.flat()) {
    qmin = std::min(qmin, v);
    qmax = std::max(qmax, v);
  }
  Array2D<double> u(kLon, kLat), v(kLon, kLat), out(kLon, kLat);
  // An irregular wind field (off-grid departure points).
  for (std::size_t j = 0; j < kLat; ++j) {
    for (std::size_t i = 0; i < kLon; ++i) {
      u(i, j) = 23.7 + 5.0 * std::sin(0.3 * i);
      v(i, j) = 4.1 * std::cos(0.2 * j);
    }
  }
  for (int s = 0; s < 20; ++s) {
    slt.advect(q, u, v, 1200.0, out);
    std::swap(q, out);
  }
  for (double val : q.flat()) {
    EXPECT_GE(val, qmin - 1e-12);
    EXPECT_LE(val, qmax + 1e-12);
  }
}

TEST_F(SltTest, PositivityPreserved) {
  auto q = blob();  // non-negative
  Array2D<double> u(kLon, kLat), v(kLon, kLat), out(kLon, kLat);
  u.fill(31.0);
  v.fill(-6.0);
  for (int s = 0; s < 50; ++s) {
    slt.advect(q, u, v, 1200.0, out);
    std::swap(q, out);
  }
  for (double val : q.flat()) EXPECT_GE(val, 0.0);
}

TEST_F(SltTest, MassApproximatelyConservedUnderRotation) {
  auto q = blob();
  const double m0 = slt.mass(q);
  Array2D<double> u(kLon, kLat), v(kLon, kLat), out(kLon, kLat);
  u.fill(25.0);
  for (int s = 0; s < 50; ++s) {
    slt.advect(q, u, v, 1200.0, out);
    std::swap(q, out);
  }
  // SLT is not exactly conservative; drift stays within a few percent.
  EXPECT_NEAR(slt.mass(q), m0, 0.05 * m0);
}

TEST_F(SltTest, ShapeMismatchThrows) {
  Array2D<double> q(kLon, kLat), small(8, 8), out(kLon, kLat);
  EXPECT_THROW(slt.advect(small, q, q, 100.0, out), ncar::precondition_error);
  EXPECT_THROW(slt.advect(q, q, q, -1.0, out), ncar::precondition_error);
}

}  // namespace
