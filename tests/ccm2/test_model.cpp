#include "ccm2/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"
#include "trace/category.hpp"
#include "trace/collector.hpp"

namespace {

using namespace ncar;

class Ccm2Test : public ::testing::Test {
protected:
  Ccm2Test() : node(sxs::MachineConfig::sx4_benchmarked()) {}

  ccm2::Ccm2Config small_config() const {
    ccm2::Ccm2Config c;
    c.res.name = "T21L4-test";
    c.res.truncation = 21;
    c.res.nlat = 32;
    c.res.nlon = 64;
    c.res.nlev = 4;
    c.res.dt_seconds = 1800.0;
    c.active_levels = 2;
    c.radiation_col_stride = 1;  // full physics numerics at test size
    return c;
  }

  sxs::Node node;
};

TEST_F(Ccm2Test, ResolutionTableMatchesPaperTable4) {
  const auto t42 = ccm2::t42l18();
  EXPECT_EQ(t42.nlat, 64);
  EXPECT_EQ(t42.nlon, 128);
  EXPECT_EQ(t42.nlev, 18);
  EXPECT_DOUBLE_EQ(t42.dt_seconds, 1200.0);
  EXPECT_EQ(t42.steps_per_day(), 72);
  const auto t170 = ccm2::t170l18();
  EXPECT_EQ(t170.nlat, 256);
  EXPECT_EQ(t170.nlon, 512);
  EXPECT_DOUBLE_EQ(t170.dt_seconds, 300.0);
  EXPECT_EQ(ccm2::table4().size(), 5u);
  EXPECT_THROW(ccm2::resolution_by_name("T999"), ncar::precondition_error);
}

TEST_F(Ccm2Test, IntegrationIsStableOver100Steps) {
  ccm2::Ccm2 model(small_config(), node);
  const double e0 = model.energy();
  for (int s = 0; s < 100; ++s) model.step(1);
  const double e1 = model.energy();
  EXPECT_TRUE(std::isfinite(e1));
  // Hyperdiffusion dissipates slowly; energy must not grow or collapse.
  EXPECT_LT(e1, 1.05 * e0);
  EXPECT_GT(e1, 0.5 * e0);
}

TEST_F(Ccm2Test, EnstrophyApproximatelyConserved) {
  // The BVE conserves enstrophy exactly; the del^4 hyperdiffusion and
  // Robert filter drain it slowly (a few percent over 50 steps).
  ccm2::Ccm2 model(small_config(), node);
  const double z0 = model.enstrophy();
  for (int s = 0; s < 50; ++s) model.step(1);
  EXPECT_LT(model.enstrophy(), z0 * 1.001);  // never grows
  EXPECT_GT(model.enstrophy(), z0 * 0.85);   // drains only slowly
}

TEST_F(Ccm2Test, MoistureStaysPositiveAndNearlyConserved) {
  ccm2::Ccm2 model(small_config(), node);
  const double m0 = model.moisture_mass(0);
  for (int s = 0; s < 50; ++s) model.step(1);
  for (double v : model.moisture(0).flat()) EXPECT_GE(v, 0.0);
  // Condensation only removes; transport drift is small.
  EXPECT_LE(model.moisture_mass(0), m0 * 1.001);
  EXPECT_GE(model.moisture_mass(0), m0 * 0.90);
}

TEST_F(Ccm2Test, TemperatureStaysPhysical) {
  ccm2::Ccm2 model(small_config(), node);
  for (int s = 0; s < 100; ++s) model.step(1);
  for (double t : model.temperature(0).flat()) {
    EXPECT_GT(t, 150.0);
    EXPECT_LT(t, 350.0);
  }
}

TEST_F(Ccm2Test, DeterministicChecksum) {
  ccm2::Ccm2 a(small_config(), node);
  for (int s = 0; s < 10; ++s) a.step(2);
  const double ca = a.checksum();
  ccm2::Ccm2 b(small_config(), node);
  for (int s = 0; s < 10; ++s) b.step(4);  // CPU count must not change physics
  EXPECT_DOUBLE_EQ(ca, b.checksum());
}

TEST_F(Ccm2Test, ResetRestoresInitialState) {
  ccm2::Ccm2 model(small_config(), node);
  const double c0 = model.checksum();
  for (int s = 0; s < 5; ++s) model.step(1);
  model.reset();
  EXPECT_DOUBLE_EQ(model.checksum(), c0);
  EXPECT_EQ(model.steps_taken(), 0);
}

TEST_F(Ccm2Test, MoreCpusReduceSimulatedTime) {
  ccm2::Ccm2 model(small_config(), node);
  node.reset();
  model.reset();
  const double t1 = model.measure_step_seconds(1, 2);
  node.reset();
  model.reset();
  const double t8 = model.measure_step_seconds(8, 2);
  EXPECT_LT(t8, t1);
}

TEST_F(Ccm2Test, SerialSectionBoundsParallelGain) {
  // With the serial per-step overhead, speedup must stay below ideal.
  ccm2::Ccm2 model(small_config(), node);
  node.reset();
  model.reset();
  const double t1 = model.measure_step_seconds(1, 2);
  node.reset();
  model.reset();
  const double t32 = model.measure_step_seconds(32, 2);
  EXPECT_LT(t1 / t32, 32.0);
  EXPECT_GT(t1 / t32, 1.0);
}

TEST_F(Ccm2Test, StepTimingComponentsSumToTotal) {
  ccm2::Ccm2 model(small_config(), node);
  const auto t = model.step(4);
  const double sum = t.serial + t.spectral_local + t.synthesis + t.ffts +
                     t.grid + t.analysis + t.slt + t.physics;
  EXPECT_NEAR(t.total, sum, 1e-12);
  EXPECT_GT(t.synthesis, 0.0);
  EXPECT_GT(t.physics, 0.0);
}

TEST_F(Ccm2Test, SustainedGflopsPositiveAndBelowNodePeak) {
  ccm2::Ccm2 model(small_config(), node);
  node.reset();
  model.reset();
  const double g = model.sustained_equiv_gflops(32, 2);
  EXPECT_GT(g, 0.0);
  const double peak =
      node.config().peak_flops_per_cpu() * node.config().cpus_per_node / 1e9;
  EXPECT_LT(g, peak);
}

TEST_F(Ccm2Test, HistoryVolumeMatchesShape) {
  ccm2::Ccm2Config c;
  c.res = ccm2::t63l18();
  ccm2::Ccm2 model(c, node);
  // Paper: ~15 GB over a year at T63L18.
  const double year_gb = model.history_bytes().value() * 365 / 1e9;
  EXPECT_GT(year_gb, 12.0);
  EXPECT_LT(year_gb, 18.0);
}

TEST_F(Ccm2Test, InvalidConfigThrows) {
  auto c = small_config();
  c.active_levels = 0;
  EXPECT_THROW(ccm2::Ccm2(c, node), ncar::precondition_error);
  c = small_config();
  c.active_levels = 99;
  EXPECT_THROW(ccm2::Ccm2(c, node), ncar::precondition_error);
  ccm2::Ccm2 ok(small_config(), node);
  EXPECT_THROW(ok.step(0), ncar::precondition_error);
  EXPECT_THROW(ok.step(33), ncar::precondition_error);
  EXPECT_THROW(ok.moisture(7), ncar::precondition_error);
}

// The memoized replay contract: timing charges depend only on (config,
// ncpu), never on the prognostic fields, so charge_step() must reproduce
// step()'s timing and per-CPU accumulator trajectory bit for bit.
TEST_F(Ccm2Test, ChargeReplayBitIdenticalToFullStep) {
  sxs::Node node_full(sxs::MachineConfig::sx4_benchmarked());
  sxs::Node node_replay(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2 full(small_config(), node_full);
  ccm2::Ccm2 replay(small_config(), node_replay);
  for (int s = 0; s < 3; ++s) {
    const auto a = full.step(4);
    const auto b = replay.charge_step(4);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.serial, b.serial);
    EXPECT_EQ(a.spectral_local, b.spectral_local);
    EXPECT_EQ(a.synthesis, b.synthesis);
    EXPECT_EQ(a.ffts, b.ffts);
    EXPECT_EQ(a.grid, b.grid);
    EXPECT_EQ(a.analysis, b.analysis);
    EXPECT_EQ(a.slt, b.slt);
    EXPECT_EQ(a.physics, b.physics);
  }
  EXPECT_EQ(node_full.elapsed_seconds(), node_replay.elapsed_seconds());
  for (int r = 0; r < node_full.cpu_count(); ++r) {
    EXPECT_EQ(node_full.cpu(r).cycles(), node_replay.cpu(r).cycles());
    EXPECT_EQ(node_full.cpu(r).equiv_flops().value(),
              node_replay.cpu(r).equiv_flops().value());
  }
}

TEST_F(Ccm2Test, ChargeGflopsMatchFullVariantExactly) {
  sxs::Node node_full(sxs::MachineConfig::sx4_benchmarked());
  sxs::Node node_replay(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2 full(small_config(), node_full);
  ccm2::Ccm2 replay(small_config(), node_replay);
  EXPECT_EQ(full.sustained_equiv_gflops(8, 2),
            replay.charge_sustained_equiv_gflops(8, 2));
  EXPECT_EQ(full.measure_step_seconds(8, 2),
            replay.measure_charge_seconds(8, 2));
}

// The SLT interpolation region is filed under its own attribution category,
// and the category choice must never perturb the simulated timing: Off and
// Summary tracing modes produce bit-identical StepTimings.
TEST_F(Ccm2Test, SltChargesFileUnderSltInterpWithoutPerturbingTiming) {
  const trace::Mode before = trace::mode();
  sxs::Node node_off(sxs::MachineConfig::sx4_benchmarked());
  sxs::Node node_sum(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2 off_model(small_config(), node_off);
  ccm2::Ccm2 sum_model(small_config(), node_sum);

  trace::set_mode(trace::Mode::Off);
  const auto a = off_model.charge_step(4);
  trace::set_mode(trace::Mode::Summary);
  const auto b = sum_model.charge_step(4);
  trace::set_mode(before);

  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.slt, b.slt);
  EXPECT_EQ(node_off.elapsed_seconds(), node_sum.elapsed_seconds());

  // Every rank that ran region 5 booked its SLT cycles under slt_interp —
  // in both modes (counters are always on; Summary only refines carves).
  double slt_ticks = 0.0;
  for (int r = 0; r < node_sum.cpu_count(); ++r) {
    slt_ticks +=
        node_sum.cpu(r).trace().category_ticks(trace::Category::SltInterp);
  }
  EXPECT_GT(slt_ticks, 0.0);
}

// The op-cost cache's reason to exist: a CCM2 charge replay re-prices the
// same per-row descriptors step after step, so the steady-state hit rate
// must be high.
TEST_F(Ccm2Test, ChargeReplayHitRateAbove90Percent) {
  ccm2::Ccm2 model(small_config(), node);
  for (int s = 0; s < 10; ++s) model.charge_step(4);
  const double hits = static_cast<double>(node.cost_cache_hits());
  const double misses = static_cast<double>(node.cost_cache_misses());
  ASSERT_GT(hits + misses, 0.0);
  EXPECT_GT(hits / (hits + misses), 0.90);
}

// The ensemble property (Table 6's mechanism): external load inflates a
// job's time by a small percentage.
TEST_F(Ccm2Test, ExternalLoadCausesPercentLevelDegradation) {
  ccm2::Ccm2 model(small_config(), node);
  node.reset();
  model.reset();
  const double quiet = model.measure_step_seconds(4, 2);
  node.reset();
  model.reset();
  node.set_external_active_cpus(28);
  const double loaded = model.measure_step_seconds(4, 2);
  node.set_external_active_cpus(0);
  const double deg = loaded / quiet - 1.0;
  EXPECT_GT(deg, 0.005);
  EXPECT_LT(deg, 0.04);
}

}  // namespace
