// Physics validation of the spectral dynamical core against analytic
// solutions of the barotropic vorticity equation on the sphere.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "ccm2/model.hpp"
#include "sxs/machine_config.hpp"

namespace {

using namespace ncar;
using spectral::cd;

ccm2::Ccm2Config wave_only_config() {
  ccm2::Ccm2Config c;
  c.res.name = "T21-wave";
  c.res.truncation = 21;
  c.res.nlat = 32;
  c.res.nlon = 64;
  c.res.nlev = 4;
  c.res.dt_seconds = 900.0;
  c.active_levels = 1;
  c.u0 = 0.0;               // no background jet
  c.wave_amplitude = 4e-6;  // single Rossby-Haurwitz mode
  c.hyperdiff_tau_s = 1e12; // effectively inviscid
  c.asselin = 0.01;
  return c;
}

/// Extract the (m, n) spectral coefficient from the model's checkpoint
/// (level 0 lives first; layout per Ccm2::checkpoint).
cd coefficient(const ccm2::Ccm2& model, int m, int n) {
  const auto snap = model.checkpoint();
  const int idx = model.transform().index().at(m, n);
  return cd(snap[1 + 2 * static_cast<std::size_t>(idx)],
            snap[2 + 2 * static_cast<std::size_t>(idx)]);
}

TEST(BveDynamics, RossbyHaurwitzPhaseSpeedMatchesDispersion) {
  // A single spherical harmonic Y_n^m is an exact solution of the
  // nonlinear BVE (its self-advection vanishes): the coefficient rotates
  // as exp(+i sigma t) with sigma = 2 Omega m / (n (n + 1)) — retrograde
  // (westward) phase propagation.
  const auto cfg = wave_only_config();
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  // Build a clean single-mode state: zero everything but (4, 5).
  ccm2::Ccm2 model(cfg, node);
  {
    auto snap = model.checkpoint();
    std::fill(snap.begin(), snap.end(), 0.0);
    const int idx = model.transform().index().at(4, 5);
    snap[1 + 2 * static_cast<std::size_t>(idx)] = cfg.wave_amplitude;
    // zeta_prev must match zeta for a clean leapfrog start.
    const std::size_t spec = static_cast<std::size_t>(
        model.transform().index().size());
    snap[1 + 2 * (spec + static_cast<std::size_t>(idx))] = cfg.wave_amplitude;
    model.restore(snap);
  }

  const cd c0 = coefficient(model, 4, 5);
  const int nsteps = 40;
  for (int s = 0; s < nsteps; ++s) model.step(1);
  const cd c1 = coefficient(model, 4, 5);

  // Amplitude preserved (inviscid single mode).
  EXPECT_NEAR(std::abs(c1), std::abs(c0), 0.02 * std::abs(c0));

  // Phase rotation rate.
  const double t = nsteps * cfg.res.dt_seconds;
  const double measured = std::arg(c1 / c0) / t;
  const double omega = 7.292e-5;
  const double sigma = 2.0 * omega * 4.0 / (5.0 * 6.0);
  EXPECT_NEAR(measured, sigma, 0.05 * sigma);
}

TEST(BveDynamics, ZonalFlowIsSteady) {
  // A pure zonal jet (m = 0) is a steady solution: V has no meridional
  // component and the advection of absolute vorticity vanishes.
  auto cfg = wave_only_config();
  cfg.u0 = 25.0;
  cfg.wave_amplitude = 0.0;
  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ccm2::Ccm2 model(cfg, node);
  const double c0 = model.checksum();
  for (int s = 0; s < 20; ++s) model.step(1);
  // Moisture transport and physics tick, but the vorticity state barely
  // moves: compare the jet coefficient directly.
  const cd jet = coefficient(model, 0, 1);
  const double want = 2.0 * cfg.u0 / (cfg.radius * std::sqrt(3.0));
  EXPECT_NEAR(jet.real(), want, 0.01 * want);
  EXPECT_NE(c0, 0.0);
}

TEST(BveDynamics, HigherModesRotateSlower) {
  // Dispersion: sigma ~ 1/(n(n+1)); the (4, 8) mode rotates slower than
  // the (4, 5) mode.
  const auto cfg = wave_only_config();
  auto rate_of = [&](int n) {
    sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
    ccm2::Ccm2 model(cfg, node);
    auto snap = model.checkpoint();
    std::fill(snap.begin(), snap.end(), 0.0);
    const int idx = model.transform().index().at(4, n);
    const std::size_t spec =
        static_cast<std::size_t>(model.transform().index().size());
    snap[1 + 2 * static_cast<std::size_t>(idx)] = cfg.wave_amplitude;
    snap[1 + 2 * (spec + static_cast<std::size_t>(idx))] = cfg.wave_amplitude;
    model.restore(snap);
    const cd c0 = coefficient(model, 4, n);
    for (int s = 0; s < 30; ++s) model.step(1);
    const cd c1 = coefficient(model, 4, n);
    return std::arg(c1 / c0) / (30 * cfg.res.dt_seconds);
  };
  const double r5 = rate_of(5);
  const double r8 = rate_of(8);
  EXPECT_GT(r5, r8);
  EXPECT_NEAR(r5 / r8, (8.0 * 9.0) / (5.0 * 6.0), 0.15 * (72.0 / 30.0));
}

}  // namespace
