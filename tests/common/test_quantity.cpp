#include "common/quantity.hpp"

#include <gtest/gtest.h>

#include <type_traits>

#include "sxs/machine_config.hpp"

namespace {

using ncar::Bytes;
using ncar::BytesPerSec;
using ncar::Cycles;
using ncar::Flops;
using ncar::FlopsPerSec;
using ncar::Seconds;
using ncar::Words;

// --- compile-time dimension safety ----------------------------------------
// Templated probes keep the tested expression dependent, so an ill-formed
// combination makes the requires-expression false instead of a hard error.
// If someone adds an implicit conversion or a cross-dimension operator by
// accident, these static_asserts fail right here (and the dedicated
// compile-fail CTest target catches the same thing from the outside).
template <class A, class B>
constexpr bool addable = requires(A a, B b) { a + b; };
template <class A, class B>
constexpr bool subtractable = requires(A a, B b) { a - b; };
template <class A, class B>
constexpr bool multipliable = requires(A a, B b) { a * b; };
template <class A, class B>
constexpr bool dividable = requires(A a, B b) { a / b; };
template <class A, class B>
constexpr bool less_comparable = requires(A a, B b) { a < b; };

static_assert(!addable<Cycles, Seconds>, "cycles + seconds must not compile");
static_assert(!subtractable<Cycles, Seconds>,
              "cycles - seconds must not compile");
static_assert(!addable<Bytes, Words>, "bytes + words must not compile");
static_assert(!less_comparable<Cycles, Seconds>,
              "cross-dimension comparison must not compile");
static_assert(!std::is_convertible_v<Seconds, double>,
              "quantities must not implicitly convert to double");
static_assert(!std::is_convertible_v<double, Seconds>,
              "doubles must not implicitly convert to quantities");
static_assert(!multipliable<Bytes, Seconds>,
              "bytes * seconds has no physical meaning here");
static_assert(!dividable<Seconds, BytesPerSec>,
              "seconds / (bytes/s) has no physical meaning here");

static_assert(!addable<Flops, Seconds>, "flops + seconds must not compile");
static_assert(!addable<Flops, FlopsPerSec>,
              "flop counts and flop rates are different dimensions");
static_assert(!multipliable<Flops, Seconds>,
              "flops * seconds has no physical meaning here");

// The sanctioned cross-dimension relations do exist:
static_assert(dividable<Bytes, Seconds>);
static_assert(dividable<Bytes, BytesPerSec>);
static_assert(multipliable<BytesPerSec, Seconds>);
static_assert(dividable<Flops, Seconds>);
static_assert(dividable<Flops, FlopsPerSec>);
static_assert(multipliable<FlopsPerSec, Seconds>);

// And quantities stay trivially cheap: same size as the double they wrap.
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Cycles>);

TEST(Quantity, SameDimensionArithmetic) {
  const Seconds a(1.5);
  const Seconds b(0.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.0);
  EXPECT_DOUBLE_EQ((-a).value(), -1.5);
  Seconds acc(0.0);
  acc += a;
  acc -= b;
  EXPECT_DOUBLE_EQ(acc.value(), 1.0);
}

TEST(Quantity, ScalingByDimensionlessFactors) {
  const Bytes b(100.0);
  EXPECT_DOUBLE_EQ((b * 3.0).value(), 300.0);
  EXPECT_DOUBLE_EQ((3.0 * b).value(), 300.0);
  EXPECT_DOUBLE_EQ((b / 4.0).value(), 25.0);
  Bytes c = b;
  c *= 2.0;
  c /= 8.0;
  EXPECT_DOUBLE_EQ(c.value(), 25.0);
}

TEST(Quantity, LikeRatioIsDimensionless) {
  const double speedup = Seconds(10.0) / Seconds(2.5);
  EXPECT_DOUBLE_EQ(speedup, 4.0);
}

TEST(Quantity, ComparisonsWork) {
  EXPECT_LT(Cycles(1.0), Cycles(2.0));
  EXPECT_EQ(Bytes(8.0), Bytes(8.0));
  EXPECT_GE(Seconds(3.0), Seconds(3.0));
}

TEST(Quantity, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Cycles().value(), 0.0);
}

TEST(Quantity, BandwidthRelations) {
  const Bytes bytes(8e9);
  const Seconds secs(2.0);
  const BytesPerSec rate = bytes / secs;
  EXPECT_DOUBLE_EQ(rate.value(), 4e9);
  EXPECT_DOUBLE_EQ((bytes / rate).value(), 2.0);
  EXPECT_DOUBLE_EQ((rate * secs).value(), 8e9);
  EXPECT_DOUBLE_EQ((secs * rate).value(), 8e9);
}

TEST(Quantity, FlopRateRelations) {
  // A sustained-Gflops computation end to end: flops / seconds is a rate,
  // rate * time gives flops back, and work / rate gives the time.
  const Flops work(4.8e9);
  const Seconds t(2.0);
  const FlopsPerSec rate = work / t;
  EXPECT_DOUBLE_EQ(rate.value(), 2.4e9);
  EXPECT_DOUBLE_EQ((work / rate).value(), 2.0);
  EXPECT_DOUBLE_EQ((rate * t).value(), 4.8e9);
  EXPECT_DOUBLE_EQ((t * rate).value(), 4.8e9);
  EXPECT_EQ(Flops(5.0), Flops(5.0));
}

TEST(Quantity, WordsAreEightBytes) {
  EXPECT_DOUBLE_EQ(ncar::to_bytes(Words(2.0)).value(), 16.0);
  EXPECT_DOUBLE_EQ(ncar::to_words(Bytes(16.0)).value(), 2.0);
  EXPECT_DOUBLE_EQ(ncar::to_words(ncar::to_bytes(Words(7.0))).value(), 7.0);
}

TEST(Quantity, ClockConversionRoundTrips) {
  const auto cfg = ncar::sxs::MachineConfig::sx4_benchmarked();
  const Cycles c(1e6);
  const Seconds s = cfg.to_seconds(c);
  EXPECT_DOUBLE_EQ(s.value(), 1e6 * cfg.seconds_per_clock());
  EXPECT_DOUBLE_EQ(cfg.to_cycles(s).value(), c.value());
}

TEST(Quantity, ClockConversionUsesTheGivenClock) {
  // The same cycle count means different wall time on different clocks —
  // the whole reason the conversion lives on MachineConfig.
  auto fast = ncar::sxs::MachineConfig::sx4_product();      // 8.0 ns
  auto slow = ncar::sxs::MachineConfig::sx4_benchmarked();  // 9.2 ns
  const Cycles c(1e9);
  EXPECT_LT(fast.to_seconds(c).value(), slow.to_seconds(c).value());
}

TEST(Quantity, ConstexprUsable) {
  constexpr Bytes b = Bytes(16.0) + Bytes(8.0);
  static_assert(b.value() == 24.0);
  constexpr double ratio = Bytes(24.0) / Bytes(8.0);
  static_assert(ratio == 3.0);
}

}  // namespace
