#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace {

using ncar::BestOf;
using ncar::summarize;

TEST(BestOf, ReportsMinimumTimeAcrossTrials) {
  BestOf b;
  b.add_time(2.0);
  b.add_time(1.5);
  b.add_time(3.0);
  EXPECT_EQ(b.trials(), 3);
  EXPECT_DOUBLE_EQ(b.best_time(), 1.5);
  EXPECT_DOUBLE_EQ(b.worst_time(), 3.0);
}

TEST(BestOf, SingleTrialIsBothBestAndWorst) {
  BestOf b;
  b.add_time(0.25);
  EXPECT_DOUBLE_EQ(b.best_time(), 0.25);
  EXPECT_DOUBLE_EQ(b.worst_time(), 0.25);
}

TEST(BestOf, EmptyThrowsOnQuery) {
  BestOf b;
  EXPECT_TRUE(b.empty());
  EXPECT_THROW(b.best_time(), ncar::precondition_error);
  EXPECT_THROW(b.worst_time(), ncar::precondition_error);
}

TEST(BestOf, RejectsNegativeDurations) {
  BestOf b;
  EXPECT_THROW(b.add_time(-1.0), ncar::precondition_error);
}

TEST(Summarize, ComputesMomentsOfKnownSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944487, 1e-9);
}

TEST(Summarize, EmptySampleIsAllZero) {
  const auto s = summarize(std::vector<double>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleElementHasZeroStddev) {
  const std::vector<double> xs{7.0};
  const auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
}

TEST(MaxDiff, AbsoluteAndRelative) {
  const std::vector<double> a{1.0, 2.0, 4.0};
  const std::vector<double> b{1.0, 2.5, 4.0};
  EXPECT_DOUBLE_EQ(ncar::max_abs_diff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(ncar::max_rel_diff(a, b), 0.2);
}

TEST(MaxDiff, MismatchedLengthsThrow) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(ncar::max_abs_diff(a, b), ncar::precondition_error);
}

}  // namespace
