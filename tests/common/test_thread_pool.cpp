#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace {

using ncar::ThreadPool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadDegeneratesToInlineLoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  int sum = 0;
  // With no workers the body runs on the caller, in index order.
  std::vector<int> order;
  pool.parallel_for(5, [&](int i) {
    order.push_back(i);
    sum += i;
  });
  EXPECT_EQ(sum, 10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](int) { ran = true; });
  pool.parallel_for(-3, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A Machine region fans out per node, each node per rank; the pool must
  // support that nesting without deadlock even when every worker is busy
  // with an outer task.
  ThreadPool pool(3);
  const int outer = 8, inner = 64;
  std::vector<std::atomic<int>> sums(outer);
  pool.parallel_for(outer, [&](int o) {
    pool.parallel_for(inner, [&](int i) {
      sums[static_cast<std::size_t>(o)] += i;
    });
  });
  for (const auto& s : sums) EXPECT_EQ(s.load(), inner * (inner - 1) / 2);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 20; ++rep) {
    try {
      pool.parallel_for(32, [&](int i) {
        if (i == 3) throw std::runtime_error("rank 3");
        if (i == 17) throw std::runtime_error("rank 17");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "rank 3");
    }
  }
}

TEST(ThreadPool, AllIndicesFinishBeforeExceptionPropagates) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16);
  EXPECT_THROW(pool.parallel_for(16,
                                 [&](int i) {
                                   hits[static_cast<std::size_t>(i)]++;
                                   if (i == 0) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int rep = 0; rep < 200; ++rep) {
    pool.parallel_for(16, [&](int i) { total += i; });
  }
  EXPECT_EQ(total.load(), 200L * 16 * 15 / 2);
}

TEST(ThreadPool, GlobalPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().thread_count(), 1);
  EXPECT_GE(ThreadPool::configured_host_threads(), 1);
}

}  // namespace
