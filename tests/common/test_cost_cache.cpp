#include "common/cost_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "common/error.hpp"

namespace {

struct Key {
  int a = 0;
  int b = 0;
  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    std::size_t seed = 0;
    ncar::hash_combine(seed, static_cast<std::size_t>(k.a));
    ncar::hash_combine(seed, static_cast<std::size_t>(k.b));
    return seed;
  }
};

using Cache = ncar::CostCache<Key, KeyHash>;

double cost_of(const Key& k) {
  // Deliberately irrational so bit-identity of replayed values means
  // something: any recomputation must reproduce exactly this double.
  return std::sqrt(2.0 + k.a) * 1.37 + k.b / 7.0;
}

TEST(CostCache, FirstGetComputesLaterGetsReplay) {
  Cache cache;
  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return cost_of({3, 4});
  };
  const double first = cache.get({3, 4}, compute);
  const double second = cache.get({3, 4}, compute);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(first, second);  // bit-identical, not just close
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CostCache, DistinctKeysAreDistinctEntries) {
  Cache cache;
  const double a = cache.get({1, 0}, [] { return 10.0; });
  const double b = cache.get({0, 1}, [] { return 20.0; });
  EXPECT_DOUBLE_EQ(a, 10.0);
  EXPECT_DOUBLE_EQ(b, 20.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CostCache, GrowthPreservesEveryEntry) {
  Cache cache(16);  // small start: many doublings on the way to 1000 keys
  for (int i = 0; i < 1000; ++i) {
    cache.get({i, -i}, [&] { return cost_of({i, -i}); });
  }
  EXPECT_EQ(cache.misses(), 1000u);
  EXPECT_GE(cache.capacity(), 2000u);
  // Every key must replay its original value without recomputation.
  for (int i = 0; i < 1000; ++i) {
    const double v = cache.get({i, -i}, [] { return -1.0; });
    EXPECT_EQ(v, cost_of({i, -i}));
  }
  EXPECT_EQ(cache.hits(), 1000u);
}

TEST(CostCache, SaturatedCacheStillReturnsCorrectValues) {
  // Past kMaxSlots (1 << 16) the table stops growing and a colliding insert
  // evicts within its probe window. Correctness must not depend on whether
  // a key survived: get() returns compute()'s value either way.
  Cache cache;
  const int n = 90000;
  for (int i = 0; i < n; ++i) {
    cache.get({i, i / 3}, [&] { return cost_of({i, i / 3}); });
  }
  EXPECT_EQ(cache.misses(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(cache.capacity(), std::size_t{1} << 16);
  std::uint64_t replays = 0;
  for (int i = 0; i < n; ++i) {
    const Key k{i, i / 3};
    const double v = cache.get(k, [&] { return cost_of(k); });
    EXPECT_EQ(v, cost_of(k));
    if (cache.hits() > replays) replays = cache.hits();
  }
  // Most of the working set was evicted-over, but whatever survived must
  // have replayed, and every call was either a hit or a (re)miss.
  EXPECT_GT(replays, 0u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(2 * n));
}

TEST(CostCache, ClearDropsEntriesAndCounters) {
  Cache cache;
  cache.get({1, 1}, [] { return 5.0; });
  cache.get({1, 1}, [] { return 5.0; });
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  int computed = 0;
  cache.get({1, 1}, [&] {
    ++computed;
    return 5.0;
  });
  EXPECT_EQ(computed, 1);
}

TEST(CostCache, RejectsBadSlotCounts) {
  EXPECT_THROW(Cache(100), ncar::precondition_error);  // not a power of two
  EXPECT_THROW(Cache(8), ncar::precondition_error);    // below probe window
}

}  // namespace
