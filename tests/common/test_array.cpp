#include "common/array.hpp"

#include <gtest/gtest.h>

namespace {

using ncar::Array2D;
using ncar::Array3D;

TEST(Array2D, ColumnMajorLayout) {
  Array2D<double> a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  auto flat = a.flat();
  // Fortran layout: first column contiguous, then second column.
  EXPECT_DOUBLE_EQ(flat[0], 1);
  EXPECT_DOUBLE_EQ(flat[1], 2);
  EXPECT_DOUBLE_EQ(flat[2], 3);
  EXPECT_DOUBLE_EQ(flat[3], 4);
}

TEST(Array2D, ColumnSpanIsUnitStrideAxis) {
  Array2D<double> a(4, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 4; ++i) a(i, j) = static_cast<double>(10 * j + i);
  auto col = a.column(2);
  ASSERT_EQ(col.size(), 4u);
  EXPECT_DOUBLE_EQ(col[0], 20);
  EXPECT_DOUBLE_EQ(col[3], 23);
}

TEST(Array2D, ColumnIndexOutOfRangeThrows) {
  Array2D<double> a(2, 2);
  EXPECT_THROW(a.column(2), ncar::precondition_error);
}

TEST(Array2D, FillSetsEveryElement) {
  Array2D<int> a(5, 5, 1);
  a.fill(9);
  for (int v : a.flat()) EXPECT_EQ(v, 9);
}

TEST(Array3D, PlaneIsContiguousIJSlice) {
  Array3D<double> a(2, 3, 4);
  a(1, 2, 3) = 42.0;
  auto p = a.plane(3);
  ASSERT_EQ(p.size(), 6u);
  EXPECT_DOUBLE_EQ(p[1 + 2 * 2], 42.0);
}

TEST(Array3D, IndexingRoundTrips) {
  Array3D<int> a(3, 4, 5);
  int v = 0;
  for (std::size_t k = 0; k < 5; ++k)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t i = 0; i < 3; ++i) a(i, j, k) = v++;
  v = 0;
  for (std::size_t k = 0; k < 5; ++k)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(a(i, j, k), v++);
  // Column-major: consecutive v values are contiguous in memory.
  EXPECT_EQ(a.flat()[0], 0);
  EXPECT_EQ(a.flat()[1], 1);
}

TEST(Array3D, DefaultConstructedIsEmpty) {
  Array3D<double> a;
  EXPECT_EQ(a.size(), 0u);
}

}  // namespace
