#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using ncar::Table;

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"Name", "Mflops"});
  t.add_row({"RADABS", "865.9"});
  t.add_row({"POP", "537.0"});
  const std::string out = t.str();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("RADABS"), std::string::npos);
  EXPECT_NE(out.find("865.9"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumericColumnsAreRightAligned) {
  Table t({"K", "V"});
  t.add_row({"a", "1.5"});
  t.add_row({"b", "12.5"});
  const std::string out = t.str();
  // "1.5" must be padded on the left to line up with "12.5".
  EXPECT_NE(out.find(" 1.5"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), ncar::precondition_error);
}

TEST(Table, EmptyHeaderListThrows) {
  EXPECT_THROW(Table({}), ncar::precondition_error);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"A", "B", "C"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 3u);
}

}  // namespace
