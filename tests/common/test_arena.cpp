#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "common/error.hpp"

namespace {

using ncar::Arena;
using ncar::ArenaScope;

TEST(Arena, TakeBumpsWithoutTouchingTheHeapPool) {
  Arena arena(64);
  const auto a = arena.take<double>(10);
  const auto b = arena.take<double>(10);
  EXPECT_EQ(arena.used(), 20u);
  EXPECT_EQ(arena.capacity(), 64u);
  // Spans are adjacent frames of the same pool.
  EXPECT_EQ(a.data() + 10, b.data());
}

TEST(Arena, ComplexTakesCountInDoubles) {
  Arena arena(8);
  const auto s = arena.take<std::complex<double>>(3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(arena.used(), 6u);
}

TEST(Arena, OverflowIsAPreconditionErrorNotAGrow) {
  Arena arena(4);
  arena.take<double>(3);
  EXPECT_THROW(arena.take<double>(2), ncar::precondition_error);
  EXPECT_EQ(arena.capacity(), 4u);
}

TEST(Arena, ScopeReleasesItsFrame) {
  Arena arena(32);
  arena.take<double>(5);
  {
    ArenaScope frame(arena);
    arena.take<double>(20);
    EXPECT_EQ(arena.used(), 25u);
  }
  EXPECT_EQ(arena.used(), 5u);
}

TEST(Arena, NestedScopesStackLikeFrames) {
  Arena arena(32);
  ArenaScope outer(arena);
  arena.take<double>(8);
  {
    ArenaScope inner(arena);
    arena.take<double>(8);
    EXPECT_EQ(arena.used(), 16u);
  }
  EXPECT_EQ(arena.used(), 8u);
}

TEST(Arena, ReserveWithLiveSpansThrows) {
  Arena arena(16);
  arena.take<double>(1);
  EXPECT_THROW(arena.reserve(64), ncar::precondition_error);
}

TEST(Arena, ReserveNeverShrinks) {
  Arena arena(16);
  arena.reserve(8);
  EXPECT_EQ(arena.capacity(), 16u);
  arena.reserve(24);
  EXPECT_EQ(arena.capacity(), 24u);
}

}  // namespace
