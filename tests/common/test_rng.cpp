#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using ncar::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoublesAreInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, MeanOfUniformApproachesHalf) {
  Rng r(42);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowStaysBelow) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

}  // namespace
