#include "common/units.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Units, RateConversions) {
  EXPECT_DOUBLE_EQ(ncar::to_mb_per_s(2.5e6), 2.5);
  EXPECT_DOUBLE_EQ(ncar::to_mflops(865.9e6), 865.9);
  EXPECT_DOUBLE_EQ(ncar::to_gflops(24e9), 24.0);
}

TEST(Units, DurationSecondsOnly) {
  EXPECT_EQ(ncar::format_duration(12.34), "12.34s");
}

TEST(Units, DurationMinutes) {
  EXPECT_EQ(ncar::format_duration(45 * 60 + 28), "45m 28.0s");
}

TEST(Units, DurationRollsMinutesIntoHours) {
  // The paper's PRODLOAD result (93 min 28 s) renders as 1h 33m 28s.
  EXPECT_EQ(ncar::format_duration(93 * 60 + 28), "1h 33m 28.0s");
}

TEST(Units, DurationHours) {
  EXPECT_EQ(ncar::format_duration(3600 + 62), "1h 01m 02.0s");
}

TEST(Units, NegativeClampedToZero) {
  EXPECT_EQ(ncar::format_duration(-5), "0.00s");
  EXPECT_EQ(ncar::format_duration(-0.001), "0.00s");
}

TEST(Units, DurationSubSecond) {
  EXPECT_EQ(ncar::format_duration(0.25), "0.25s");
  EXPECT_EQ(ncar::format_duration(0.004), "0.00s");
}

TEST(Units, DurationCarriesPastMinuteBoundary) {
  // 59.996 rounds to 60.00 at display precision; it must carry into the
  // minute field, never render as "60.00s".
  EXPECT_EQ(ncar::format_duration(59.996), "1m 00.0s");
  EXPECT_EQ(ncar::format_duration(59.99), "59.99s");
}

TEST(Units, DurationCarriesPastHourBoundary) {
  EXPECT_EQ(ncar::format_duration(3599.96), "1h 00m 00.0s");
  EXPECT_EQ(ncar::format_duration(3599.0), "59m 59.0s");
}

TEST(Units, DurationTypedOverloadMatches) {
  EXPECT_EQ(ncar::format_duration(ncar::Seconds(93 * 60 + 28)),
            "1h 33m 28.0s");
}

TEST(Units, FormatFixedDigits) {
  EXPECT_EQ(ncar::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(ncar::format_fixed(1327.53, 2), "1327.53");
}

TEST(Units, FormatFixedRoundsAtDigitBoundary) {
  // Carry must propagate across every displayed digit.
  EXPECT_EQ(ncar::format_fixed(0.999, 2), "1.00");
  EXPECT_EQ(ncar::format_fixed(9.999, 2), "10.00");
  EXPECT_EQ(ncar::format_fixed(1.0 / 3.0, 4), "0.3333");
}

TEST(Units, FormatFixedZeroDigits) {
  EXPECT_EQ(ncar::format_fixed(7.2, 0), "7");
  EXPECT_EQ(ncar::format_fixed(-7.2, 0), "-7");
}

TEST(Units, TypedRateOverloads) {
  EXPECT_DOUBLE_EQ(ncar::to_mb_per_s(ncar::BytesPerSec(2.5e6)), 2.5);
  EXPECT_DOUBLE_EQ(ncar::to_mflops(ncar::FlopsPerSec(865.9e6)), 865.9);
  EXPECT_DOUBLE_EQ(ncar::to_gflops(ncar::FlopsPerSec(24e9)), 24.0);
}

}  // namespace
