#include "common/units.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Units, RateConversions) {
  EXPECT_DOUBLE_EQ(ncar::to_mb_per_s(2.5e6), 2.5);
  EXPECT_DOUBLE_EQ(ncar::to_mflops(865.9e6), 865.9);
  EXPECT_DOUBLE_EQ(ncar::to_gflops(24e9), 24.0);
}

TEST(Units, DurationSecondsOnly) {
  EXPECT_EQ(ncar::format_duration(12.34), "12.34s");
}

TEST(Units, DurationMinutes) {
  EXPECT_EQ(ncar::format_duration(45 * 60 + 28), "45m 28.0s");
}

TEST(Units, DurationRollsMinutesIntoHours) {
  // The paper's PRODLOAD result (93 min 28 s) renders as 1h 33m 28s.
  EXPECT_EQ(ncar::format_duration(93 * 60 + 28), "1h 33m 28.0s");
}

TEST(Units, DurationHours) {
  EXPECT_EQ(ncar::format_duration(3600 + 62), "1h 01m 02.0s");
}

TEST(Units, NegativeClampedToZero) {
  EXPECT_EQ(ncar::format_duration(-5), "0.00s");
}

TEST(Units, FormatFixedDigits) {
  EXPECT_EQ(ncar::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(ncar::format_fixed(1327.53, 2), "1327.53");
}

}  // namespace
