// The determinism contract of the SIMD layer (DESIGN.md section 12): every
// backend is bit-identical to the scalar reference for every kernel, at
// every size — including the remainder tails that fall back to scalar code
// inside the vector kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "fft/complex_fft.hpp"
#include "machines/comparator.hpp"
#include "radabs/radabs.hpp"
#include "simd/simd.hpp"

namespace {

using ncar::Rng;
using ncar::simd::Backend;
using cd = ncar::simd::cd;
namespace simd = ncar::simd;

// Sizes chosen to hit the empty case, pure-tail cases below every lane
// width (2, 4, 8), exact multiples, and off-by-one remainders.
const long kSizes[] = {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 101};

std::vector<double> random_vec(Rng& rng, long n, double lo = -1.0,
                               double hi = 1.0) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = lo + (hi - lo) * rng.next_double();
  return v;
}

std::vector<cd> random_cvec(Rng& rng, long n) {
  std::vector<cd> v(static_cast<std::size_t>(n));
  for (cd& z : v) {
    z = cd(2.0 * rng.next_double() - 1.0, 2.0 * rng.next_double() - 1.0);
  }
  return v;
}

template <typename T>
void expect_bits_equal(const std::vector<T>& a, const std::vector<T>& b,
                       Backend backend, long n, const char* kernel) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
      << kernel << " diverges from scalar on " << simd::to_string(backend)
      << " at n=" << n;
}

// Runs `check(scalar_table, backend_table, backend, n)` for every supported
// non-scalar backend and every probe size.
template <typename Check>
void for_each_backend_and_size(Check check) {
  const simd::KernelTable& ref = simd::scalar_table();
  for (int i = 1; i < simd::kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    if (!simd::supported(b)) continue;
    const simd::KernelTable& kt = simd::table_for(b);
    for (long n : kSizes) check(ref, kt, b, n);
  }
}

TEST(SimdBitIdentity, StreamingKernels) {
  for_each_backend_and_size([](const simd::KernelTable& ref,
                               const simd::KernelTable& kt, Backend b,
                               long n) {
    Rng rng(7);
    const auto src = random_vec(rng, n * 3 + 1, -10.0, 10.0);
    std::vector<long> idx(static_cast<std::size_t>(n));
    for (long& k : idx) {
      k = static_cast<long>(rng.next_double() * static_cast<double>(n * 3));
    }
    std::vector<double> a(static_cast<std::size_t>(n), 0.0);
    std::vector<double> c = a;
    ref.copy_d(src.data(), a.data(), n);
    kt.copy_d(src.data(), c.data(), n);
    expect_bits_equal(a, c, b, n, "copy_d");

    ref.gather_d(src.data(), idx.data(), a.data(), n);
    kt.gather_d(src.data(), idx.data(), c.data(), n);
    expect_bits_equal(a, c, b, n, "gather_d");

    ref.strided_copy_d(src.data(), 3, a.data(), n);
    kt.strided_copy_d(src.data(), 3, c.data(), n);
    expect_bits_equal(a, c, b, n, "strided_copy_d");
  });
}

TEST(SimdBitIdentity, ElementwiseKernels) {
  for_each_backend_and_size([](const simd::KernelTable& ref,
                               const simd::KernelTable& kt, Backend b,
                               long n) {
    Rng rng(11);
    const auto x = random_vec(rng, n, -5.0, 5.0);
    const auto base = random_vec(rng, n, -5.0, 5.0);
    std::vector<double> a = base;
    std::vector<double> c = base;
    ref.add_d(a.data(), x.data(), n);
    kt.add_d(c.data(), x.data(), n);
    expect_bits_equal(a, c, b, n, "add_d");

    ref.scale_d(x.data(), 1.0 / 3.0, a.data(), n);
    kt.scale_d(x.data(), 1.0 / 3.0, c.data(), n);
    expect_bits_equal(a, c, b, n, "scale_d");

    ref.scale2_d(x.data(), 0.1, 7.3, a.data(), n);
    kt.scale2_d(x.data(), 0.1, 7.3, c.data(), n);
    expect_bits_equal(a, c, b, n, "scale2_d");
  });
}

TEST(SimdBitIdentity, SelectMatchesScalarIncludingNanMasks) {
  for_each_backend_and_size([](const simd::KernelTable& ref,
                               const simd::KernelTable& kt, Backend b,
                               long n) {
    Rng rng(13);
    auto mask = random_vec(rng, n, 0.0, 1.0);
    for (long i = 0; i < n; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      if (i % 3 == 0) mask[s] = 0.0;
      if (i % 7 == 0) mask[s] = std::numeric_limits<double>::quiet_NaN();
      if (i % 5 == 0) mask[s] = -0.0;  // signed zero selects b, like != 0
    }
    const auto x = random_vec(rng, n);
    const auto y = random_vec(rng, n);
    std::vector<double> a(static_cast<std::size_t>(n), 0.0);
    std::vector<double> c = a;
    ref.select_d(mask.data(), x.data(), y.data(), a.data(), n);
    kt.select_d(mask.data(), x.data(), y.data(), c.data(), n);
    expect_bits_equal(a, c, b, n, "select_d");
  });
}

TEST(SimdBitIdentity, RadabsPairKernel) {
  for_each_backend_and_size([](const simd::KernelTable& ref,
                               const simd::KernelTable& kt, Backend b,
                               long n) {
    Rng rng(17);
    const auto w = random_vec(rng, n, 1e-4, 2.0);
    const auto t1 = random_vec(rng, n, 200.0, 310.0);
    const auto t2 = random_vec(rng, n, 200.0, 310.0);
    std::vector<double> a(static_cast<std::size_t>(n), 0.0);
    std::vector<double> c = a;
    std::vector<double> scratch(static_cast<std::size_t>(4 * n), 0.0);
    ref.radabs_pair_d(w.data(), t1.data(), t2.data(), 0.73, a.data(),
                      scratch.data(), n);
    kt.radabs_pair_d(w.data(), t1.data(), t2.data(), 0.73, c.data(),
                     scratch.data(), n);
    expect_bits_equal(a, c, b, n, "radabs_pair_d");
  });
}

TEST(SimdBitIdentity, OceanKernels) {
  for_each_backend_and_size([](const simd::KernelTable& ref,
                               const simd::KernelTable& kt, Backend b,
                               long n) {
    Rng rng(19);
    const auto f = random_vec(rng, n);
    const auto aip = random_vec(rng, n);
    const auto aim = random_vec(rng, n);
    const auto ajp = random_vec(rng, n);
    const auto ajm = random_vec(rng, n);
    const auto uu = random_vec(rng, n);
    const auto vv = random_vec(rng, n);
    std::vector<double> a(static_cast<std::size_t>(n), 0.0);
    std::vector<double> c = a;
    ref.mom_stencil_d(f.data(), aip.data(), aim.data(), ajp.data(),
                      ajm.data(), uu.data(), vv.data(), 0.3, 0.01, a.data(),
                      n);
    kt.mom_stencil_d(f.data(), aip.data(), aim.data(), ajp.data(), ajm.data(),
                     uu.data(), vv.data(), 0.3, 0.01, c.data(), n);
    expect_bits_equal(a, c, b, n, "mom_stencil_d");

    auto up_a = random_vec(rng, n, 270.0, 290.0);
    auto lo_a = random_vec(rng, n, 270.0, 290.0);
    auto up_c = up_a;
    auto lo_c = lo_a;
    ref.mix_unstable_d(up_a.data(), lo_a.data(), n);
    kt.mix_unstable_d(up_c.data(), lo_c.data(), n);
    expect_bits_equal(up_a, up_c, b, n, "mix_unstable_d upper");
    expect_bits_equal(lo_a, lo_c, b, n, "mix_unstable_d lower");

    auto eta_a = random_vec(rng, n);
    auto eta_c = eta_a;
    ref.pop_eta_d(f.data(), aip.data(), aim.data(), ajp.data(), 0.4,
                  eta_a.data(), n);
    kt.pop_eta_d(f.data(), aip.data(), aim.data(), ajp.data(), 0.4,
                 eta_c.data(), n);
    expect_bits_equal(eta_a, eta_c, b, n, "pop_eta_d");

    auto u_a = random_vec(rng, n);
    auto v_a = random_vec(rng, n);
    auto u_c = u_a;
    auto v_c = v_a;
    ref.pop_momentum_d(f.data(), aip.data(), aim.data(), ajp.data(), 0.02,
                       9.8, 1e-4, 1e-3, u_a.data(), v_a.data(), n);
    kt.pop_momentum_d(f.data(), aip.data(), aim.data(), ajp.data(), 0.02,
                      9.8, 1e-4, 1e-3, u_c.data(), v_c.data(), n);
    expect_bits_equal(u_a, u_c, b, n, "pop_momentum_d u");
    expect_bits_equal(v_a, v_c, b, n, "pop_momentum_d v");

    auto t_a = random_vec(rng, n);
    auto t_c = t_a;
    ref.pop_tracer_d(f.data(), aip.data(), aim.data(), ajp.data(), uu.data(),
                     vv.data(), -0.25, 0.05, t_a.data(), n);
    kt.pop_tracer_d(f.data(), aip.data(), aim.data(), ajp.data(), uu.data(),
                    vv.data(), -0.25, 0.05, t_c.data(), n);
    expect_bits_equal(t_a, t_c, b, n, "pop_tracer_d");
  });
}

TEST(SimdBitIdentity, FftCombineKernels) {
  for_each_backend_and_size([](const simd::KernelTable& ref,
                               const simd::KernelTable& kt, Backend b,
                               long m) {
    if (m == 0) return;  // combine passes require at least one butterfly
    Rng rng(23);
    for (const int f : {2, 3, 5}) {
      const auto data = random_cvec(rng, f * m);
      const auto tw = random_cvec(rng, f * m);
      auto a = data;
      auto c = data;
      for (const double sign : {-1.0, 1.0}) {
        a = data;
        c = data;
        if (f == 2) {
          ref.fft_combine2(a.data(), m, tw.data());
          kt.fft_combine2(c.data(), m, tw.data());
        } else if (f == 3) {
          ref.fft_combine3(a.data(), m, tw.data(), sign);
          kt.fft_combine3(c.data(), m, tw.data(), sign);
        } else {
          ref.fft_combine5(a.data(), m, tw.data(), sign);
          kt.fft_combine5(c.data(), m, tw.data(), sign);
        }
        expect_bits_equal(a, c, b, m, "fft_combine");
      }
    }
  });
}

TEST(SimdBitIdentity, ComplexAccumulationKernels) {
  for_each_backend_and_size([](const simd::KernelTable& ref,
                               const simd::KernelTable& kt, Backend b,
                               long n) {
    Rng rng(29);
    const auto s = random_cvec(rng, n);
    const auto p = random_vec(rng, n);
    const auto d = random_vec(rng, n);
    auto acc_a = random_cvec(rng, n);
    auto acc_c = acc_a;
    const cd g(0.37, -1.21);
    ref.axpy_cd_r(acc_a.data(), g, p.data(), n);
    kt.axpy_cd_r(acc_c.data(), g, p.data(), n);
    expect_bits_equal(acc_a, acc_c, b, n, "axpy_cd_r");

    const cd dot_a = ref.dot_cd_r(s.data(), p.data(), n);
    const cd dot_c = kt.dot_cd_r(s.data(), p.data(), n);
    EXPECT_EQ(std::memcmp(&dot_a, &dot_c, sizeof(cd)), 0)
        << "dot_cd_r diverges on " << simd::to_string(b) << " at n=" << n;

    cd pa, da, pc, dc;
    ref.dot2_cd_r(s.data(), p.data(), d.data(), n, &pa, &da);
    kt.dot2_cd_r(s.data(), p.data(), d.data(), n, &pc, &dc);
    EXPECT_EQ(std::memcmp(&pa, &pc, sizeof(cd)), 0)
        << "dot2_cd_r (p) diverges on " << simd::to_string(b) << " n=" << n;
    EXPECT_EQ(std::memcmp(&da, &dc, sizeof(cd)), 0)
        << "dot2_cd_r (d) diverges on " << simd::to_string(b) << " n=" << n;
  });
}

// End-to-end: a full mixed-radix FFT and the RADABS kernel produce
// bit-identical results under every forced backend.
class ForcedBackend {
public:
  explicit ForcedBackend(Backend b) : before_(simd::active()) {
    simd::set_backend(b);
  }
  ~ForcedBackend() { simd::set_backend(before_); }
  ForcedBackend(const ForcedBackend&) = delete;
  ForcedBackend& operator=(const ForcedBackend&) = delete;

private:
  Backend before_;
};

TEST(SimdBitIdentity, FullFftMatchesScalarUnderEveryBackend) {
  const long n = 120;  // 2^3 * 3 * 5 exercises all three radices
  Rng rng(31);
  std::vector<cd> in(static_cast<std::size_t>(n));
  for (cd& z : in) {
    z = cd(2.0 * rng.next_double() - 1.0, 2.0 * rng.next_double() - 1.0);
  }
  const ncar::fft::Plan plan(n);
  std::vector<cd> fwd_ref(static_cast<std::size_t>(n));
  std::vector<cd> inv_ref(static_cast<std::size_t>(n));
  {
    ForcedBackend force(Backend::Scalar);
    plan.forward(in, fwd_ref);
    plan.inverse(fwd_ref, inv_ref);
  }
  for (int i = 1; i < simd::kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    if (!simd::supported(b)) continue;
    ForcedBackend force(b);
    std::vector<cd> fwd(static_cast<std::size_t>(n));
    std::vector<cd> inv(static_cast<std::size_t>(n));
    plan.forward(in, fwd);
    plan.inverse(fwd, inv);
    expect_bits_equal(fwd_ref, fwd, b, n, "Plan::forward");
    expect_bits_equal(inv_ref, inv, b, n, "Plan::inverse");
  }
}

TEST(SimdBitIdentity, RadabsChecksumMatchesScalarUnderEveryBackend) {
  const auto field = ncar::radabs::make_test_atmosphere(101, 13);
  double ref_checksum = 0.0;
  {
    ForcedBackend force(Backend::Scalar);
    ncar::machines::Comparator sx4(
        ncar::machines::Comparator::nec_sx4_single());
    ref_checksum = ncar::radabs::run_radabs(sx4, field).checksum;
  }
  for (int i = 1; i < simd::kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    if (!simd::supported(b)) continue;
    ForcedBackend force(b);
    ncar::machines::Comparator sx4(
        ncar::machines::Comparator::nec_sx4_single());
    const double checksum = ncar::radabs::run_radabs(sx4, field).checksum;
    EXPECT_EQ(checksum, ref_checksum) << simd::to_string(b);
  }
}

}  // namespace
