// Backend probing, SX4NCAR_SIMD parsing, and forcing semantics.

#include "simd/simd.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using ncar::simd::Backend;
namespace simd = ncar::simd;

// Restores the active backend on scope exit so forcing tests do not leak
// into the rest of the suite.
class BackendGuard {
public:
  BackendGuard() : before_(simd::active()) {}
  ~BackendGuard() { simd::set_backend(before_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

private:
  Backend before_;
};

TEST(SimdDispatch, NamesRoundTrip) {
  for (int i = 0; i < simd::kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    Backend back = Backend::Scalar;
    bool is_auto = true;
    ASSERT_TRUE(simd::backend_from_string(simd::to_string(b), back, is_auto));
    EXPECT_EQ(back, b) << simd::to_string(b);
    EXPECT_FALSE(is_auto);
  }
}

TEST(SimdDispatch, AutoSelectsBestSupported) {
  Backend out = Backend::Scalar;
  bool is_auto = false;
  ASSERT_TRUE(simd::backend_from_string("auto", out, is_auto));
  EXPECT_TRUE(is_auto);
  EXPECT_EQ(out, simd::best_supported());
}

TEST(SimdDispatch, UnknownNamesAreRejected) {
  Backend out = Backend::Scalar;
  bool is_auto = false;
  EXPECT_FALSE(simd::backend_from_string("neon", out, is_auto));
  EXPECT_FALSE(simd::backend_from_string("", out, is_auto));
  EXPECT_FALSE(simd::backend_from_string(nullptr, out, is_auto));
}

TEST(SimdDispatch, EnvParseFallsBackToBestSupported) {
  EXPECT_EQ(simd::backend_from_env(nullptr), simd::best_supported());
  EXPECT_EQ(simd::backend_from_env(""), simd::best_supported());
  EXPECT_EQ(simd::backend_from_env("auto"), simd::best_supported());
  EXPECT_EQ(simd::backend_from_env("bogus"), simd::best_supported());
  EXPECT_EQ(simd::backend_from_env("scalar"), Backend::Scalar);
}

TEST(SimdDispatch, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(simd::supported(Backend::Scalar));
  EXPECT_TRUE(simd::supported(simd::best_supported()));
}

TEST(SimdDispatch, ForcingScalarTakesEffectAndRestores) {
  BackendGuard guard;
  EXPECT_EQ(simd::set_backend(Backend::Scalar), Backend::Scalar);
  EXPECT_EQ(simd::active(), Backend::Scalar);
  // The active table is exactly the scalar reference table.
  EXPECT_EQ(&simd::table(), &simd::scalar_table());
}

TEST(SimdDispatch, ForcingEverySupportedBackendSticks) {
  BackendGuard guard;
  for (int i = 0; i < simd::kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    const Backend got = simd::set_backend(b);
    if (simd::supported(b)) {
      EXPECT_EQ(got, b) << simd::to_string(b);
      EXPECT_EQ(simd::active(), b);
      EXPECT_EQ(&simd::table(), &simd::table_for(b));
    } else {
      // Unsupported requests clamp to the best supported backend.
      EXPECT_EQ(got, simd::best_supported()) << simd::to_string(b);
    }
  }
}

TEST(SimdDispatch, TableForUnsupportedBackendIsScalar) {
  for (int i = 0; i < simd::kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    if (!simd::supported(b)) {
      EXPECT_EQ(&simd::table_for(b), &simd::scalar_table())
          << simd::to_string(b);
    }
  }
}

TEST(SimdDispatch, EveryTablePointerIsNonNull) {
  for (int i = 0; i < simd::kBackendCount; ++i) {
    const simd::KernelTable& kt = simd::table_for(static_cast<Backend>(i));
    EXPECT_NE(kt.copy_d, nullptr);
    EXPECT_NE(kt.gather_d, nullptr);
    EXPECT_NE(kt.strided_copy_d, nullptr);
    EXPECT_NE(kt.add_d, nullptr);
    EXPECT_NE(kt.scale_d, nullptr);
    EXPECT_NE(kt.scale2_d, nullptr);
    EXPECT_NE(kt.select_d, nullptr);
    EXPECT_NE(kt.radabs_pair_d, nullptr);
    EXPECT_NE(kt.mom_stencil_d, nullptr);
    EXPECT_NE(kt.mix_unstable_d, nullptr);
    EXPECT_NE(kt.pop_eta_d, nullptr);
    EXPECT_NE(kt.pop_momentum_d, nullptr);
    EXPECT_NE(kt.pop_tracer_d, nullptr);
    EXPECT_NE(kt.fft_combine2, nullptr);
    EXPECT_NE(kt.fft_combine3, nullptr);
    EXPECT_NE(kt.fft_combine5, nullptr);
    EXPECT_NE(kt.axpy_cd_r, nullptr);
    EXPECT_NE(kt.dot_cd_r, nullptr);
    EXPECT_NE(kt.dot2_cd_r, nullptr);
  }
}

}  // namespace
