// Tolerance bands, expectations, and baseline round-trip/compare.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/baseline.hpp"
#include "harness/expectation.hpp"
#include "harness/json.hpp"
#include "harness/reporter.hpp"

namespace ncar::bench {
namespace {

// --- Band edges (bands are inclusive intervals) ---------------------------

TEST(Band, AbsoluteEdges) {
  const Band b = Band::absolute(100.0, 5.0);
  EXPECT_TRUE(b.contains(100.0));
  EXPECT_TRUE(b.contains(95.0));
  EXPECT_TRUE(b.contains(105.0));
  EXPECT_FALSE(b.contains(94.999));
  EXPECT_FALSE(b.contains(105.001));
  EXPECT_DOUBLE_EQ(b.lo(), 95.0);
  EXPECT_DOUBLE_EQ(b.hi(), 105.0);
}

TEST(Band, AbsoluteZeroTolerancePinsExactly) {
  const Band b = Band::absolute(32.0, 0.0);
  EXPECT_TRUE(b.contains(32.0));
  EXPECT_FALSE(b.contains(32.0000001));
  EXPECT_FALSE(b.contains(31.9999999));
}

TEST(Band, RelativeEdges) {
  const Band b = Band::relative(200.0, 0.25);  // [150, 250]
  EXPECT_TRUE(b.contains(150.0));
  EXPECT_TRUE(b.contains(250.0));
  EXPECT_FALSE(b.contains(149.9));
  EXPECT_FALSE(b.contains(250.1));
}

TEST(Band, RelativeOfNegativeExpectedUsesMagnitude) {
  const Band b = Band::relative(-100.0, 0.10);  // [-110, -90]
  EXPECT_TRUE(b.contains(-100.0));
  EXPECT_TRUE(b.contains(-110.0));
  EXPECT_TRUE(b.contains(-90.0));
  EXPECT_FALSE(b.contains(-89.0));
  EXPECT_FALSE(b.contains(-111.0));
}

TEST(Band, RangeEdges) {
  const Band b = Band::range(0.10, 0.18);
  EXPECT_TRUE(b.contains(0.10));
  EXPECT_TRUE(b.contains(0.18));
  EXPECT_TRUE(b.contains(0.14));
  EXPECT_FALSE(b.contains(0.0999));
  EXPECT_FALSE(b.contains(0.181));
}

TEST(Band, BooleanMatchesOnlyItsTruthValue) {
  const Band yes = Band::boolean(true);
  EXPECT_TRUE(yes.contains(1.0));
  EXPECT_FALSE(yes.contains(0.0));
  const Band no = Band::boolean(false);
  EXPECT_TRUE(no.contains(0.0));
  EXPECT_FALSE(no.contains(1.0));
}

TEST(Band, JsonRoundTripAllKinds) {
  for (const Band& b :
       {Band::absolute(9.2, 1e-9), Band::relative(1371.0, 0.25),
        Band::range(5.0, 20.0), Band::boolean(true), Band::boolean(false)}) {
    EXPECT_EQ(Band::from_json(b.to_json()), b) << b.describe();
  }
}

TEST(Expectation, JsonRoundTripKeepsVerdict) {
  Expectation e;
  e.metric = "table7.mom.seconds@cpus=32";
  e.band = Band::relative(226.62, 0.25);
  e.source = "paper Table 7";
  e.actual = 217.33;
  e.passed = true;
  const Expectation back = Expectation::from_json(e.to_json());
  EXPECT_EQ(back.metric, e.metric);
  EXPECT_EQ(back.band, e.band);
  EXPECT_EQ(back.source, e.source);
  EXPECT_DOUBLE_EQ(back.actual, e.actual);
  EXPECT_TRUE(back.passed);
}

// --- Baseline round-trip ---------------------------------------------------

Baseline demo_baseline() {
  Baseline b;
  b.bench = "demo";
  b.full_mode = false;
  b.metrics = {{"demo.copy.mb_per_s@N=256", 5206.977349648529, "MB/s"},
               {"demo.verified", 1.0, ""},
               {"demo.seconds", 226.62, "s"}};
  return b;
}

TEST(Baseline, JsonRoundTripPreservesOrderValuesAndUnits) {
  const Baseline b = demo_baseline();
  const Baseline back = Baseline::from_json(b.to_json());
  EXPECT_EQ(back, b);
  ASSERT_EQ(back.metrics.size(), 3u);
  EXPECT_EQ(back.metrics[0].name, "demo.copy.mb_per_s@N=256");
  EXPECT_EQ(back.metrics[0].unit, "MB/s");
  EXPECT_EQ(back.metrics[1].unit, "");
}

TEST(Baseline, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "demo_baseline.json")
          .string();
  const Baseline b = demo_baseline();
  b.save(path);
  EXPECT_EQ(Baseline::load(path), b);
  std::remove(path.c_str());
}

TEST(Baseline, LoadThrowsOnMissingAndInvalidFiles) {
  EXPECT_THROW(Baseline::load("/nonexistent/nowhere.json"),
               std::runtime_error);
  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "bad_baseline.json")
          .string();
  std::ofstream(path) << "{not json";
  EXPECT_THROW(Baseline::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Baseline, FindLocatesMetricsByName) {
  const Baseline b = demo_baseline();
  ASSERT_NE(b.find("demo.seconds"), nullptr);
  EXPECT_DOUBLE_EQ(b.find("demo.seconds")->value, 226.62);
  EXPECT_EQ(b.find("absent"), nullptr);
}

// --- compare_metrics -------------------------------------------------------

TEST(CompareMetrics, IdenticalRunIsOk) {
  const Baseline b = demo_baseline();
  const CompareResult r = compare_metrics(b, b.metrics, 0.02);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.deltas.size(), 3u);
}

TEST(CompareMetrics, TwentyPercentDropIsARegression) {
  const Baseline b = demo_baseline();
  auto run = b.metrics;
  run[0].value *= 0.8;
  const CompareResult r = compare_metrics(b, run, 0.02);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.regressed, 1);
  EXPECT_EQ(r.deltas[0].status, MetricDelta::Status::Regressed);
  EXPECT_NEAR(r.deltas[0].rel_change, -0.20, 1e-12);
}

TEST(CompareMetrics, ToleranceIsSymmetric) {
  // A large *rise* is also flagged: the baseline describes the expected
  // behaviour of a deterministic model, so drift either way is suspect.
  const Baseline b = demo_baseline();
  auto run = b.metrics;
  run[2].value *= 1.5;
  EXPECT_EQ(compare_metrics(b, run, 0.02).regressed, 1);
}

TEST(CompareMetrics, WithinToleranceIsOk) {
  const Baseline b = demo_baseline();
  auto run = b.metrics;
  run[0].value *= 1.019;
  run[2].value *= 0.981;
  EXPECT_TRUE(compare_metrics(b, run, 0.02).ok());
}

TEST(CompareMetrics, MissingBaselineMetricIsFlagged) {
  const Baseline b = demo_baseline();
  auto run = b.metrics;
  run.erase(run.begin() + 1);
  const CompareResult r = compare_metrics(b, run, 0.02);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.missing, 1);
  EXPECT_EQ(r.deltas[1].status, MetricDelta::Status::Missing);
  EXPECT_EQ(r.deltas[1].name, "demo.verified");
}

TEST(CompareMetrics, ExtraRunMetricsAreNotRegressions) {
  const Baseline b = demo_baseline();
  auto run = b.metrics;
  run.push_back({"demo.new_metric", 42.0, ""});
  EXPECT_TRUE(compare_metrics(b, run, 0.02).ok());
}

TEST(CompareMetrics, ZeroBaselineUsesAbsoluteTolerance) {
  Baseline b;
  b.bench = "zero";
  b.metrics = {{"zero.residual", 0.0, ""}};
  EXPECT_TRUE(compare_metrics(b, {{"zero.residual", 0.01, ""}}, 0.02).ok());
  EXPECT_FALSE(compare_metrics(b, {{"zero.residual", 0.03, ""}}, 0.02).ok());
}

// --- host-timing percentiles ----------------------------------------------

BenchReporter make_reporter(const std::string& name) {
  static char prog[] = "test";
  char* argv[] = {prog};
  return BenchReporter(name, 1, argv);
}

double host_value(const BenchReporter& rep, const std::string& name) {
  for (const Metric& m : rep.host_metrics()) {
    if (m.name == name) return m.value;
  }
  ADD_FAILURE() << "missing host metric " << name;
  return -1.0;
}

TEST(HostTiming, NearestRankPercentilesAndStddev) {
  BenchReporter rep = make_reporter("ht_values");
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  rep.host_timing("t.sweep_s", samples);
  EXPECT_DOUBLE_EQ(host_value(rep, "t.sweep_s.p50"), 50.0);
  EXPECT_DOUBLE_EQ(host_value(rep, "t.sweep_s.p90"), 90.0);
  EXPECT_DOUBLE_EQ(host_value(rep, "t.sweep_s.p99"), 99.0);
  // Population stddev of 1..100: sqrt((100^2 - 1) / 12).
  EXPECT_NEAR(host_value(rep, "t.sweep_s.stddev"),
              std::sqrt((100.0 * 100.0 - 1.0) / 12.0), 1e-12);
  // Timing statistics are host telemetry, never deterministic metrics.
  EXPECT_TRUE(rep.metrics().empty());
}

TEST(HostTiming, SingleSampleIsEveryPercentile) {
  BenchReporter rep = make_reporter("ht_single");
  rep.host_timing("t.one_s", {0.25});
  EXPECT_DOUBLE_EQ(host_value(rep, "t.one_s.p50"), 0.25);
  EXPECT_DOUBLE_EQ(host_value(rep, "t.one_s.p90"), 0.25);
  EXPECT_DOUBLE_EQ(host_value(rep, "t.one_s.p99"), 0.25);
  EXPECT_DOUBLE_EQ(host_value(rep, "t.one_s.stddev"), 0.0);
}

TEST(HostTiming, EmptySampleSetRegistersNothing) {
  BenchReporter rep = make_reporter("ht_empty");
  rep.host_timing("t.none_s", {});
  EXPECT_TRUE(rep.host_metrics().empty());
}

}  // namespace
}  // namespace ncar::bench
