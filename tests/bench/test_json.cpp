// The harness JSON value: deterministic writer, strict parser, round-trip.

#include "harness/json.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ncar::bench {
namespace {

TEST(JsonNumber, IntegralValuesRenderWithoutDecimalPoint) {
  EXPECT_EQ(Json::number_to_string(0.0), "0");
  EXPECT_EQ(Json::number_to_string(32.0), "32");
  EXPECT_EQ(Json::number_to_string(-7.0), "-7");
  EXPECT_EQ(Json::number_to_string(1024.0), "1024");
}

TEST(JsonNumber, ShortestRoundTrip) {
  // The writer must emit enough digits that parsing gives back the same
  // bit pattern — the determinism tests diff files byte-for-byte.
  for (double v : {0.1, 1.0 / 3.0, 9.2, 1371.25, 6954.185132925772,
                   std::numeric_limits<double>::min(), 1e300, -2.5e-7}) {
    const std::string s = Json::number_to_string(v);
    EXPECT_EQ(Json::parse(s).as_number(), v) << s;
  }
}

TEST(JsonObject, InsertionOrderPreserved) {
  Json j = Json::object();
  j.set("zebra", 1);
  j.set("alpha", 2);
  j.set("mid", 3);
  EXPECT_EQ(j.dump(0), R"({"zebra": 1, "alpha": 2, "mid": 3})");
}

TEST(JsonObject, SetOverwritesInPlace) {
  Json j = Json::object();
  j.set("a", 1);
  j.set("b", 2);
  j.set("a", 9);
  EXPECT_EQ(j.dump(0), R"({"a": 9, "b": 2})");
}

TEST(JsonObject, FindAndAt) {
  Json j = Json::object();
  j.set("x", 4.5);
  ASSERT_NE(j.find("x"), nullptr);
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(j.at("x").as_number(), 4.5);
  EXPECT_THROW(j.at("missing"), std::runtime_error);
}

TEST(JsonParse, RoundTripsEveryKind) {
  const std::string doc = R"({
  "null": null,
  "t": true,
  "f": false,
  "num": -12.25,
  "str": "hi \"there\" \\ \n",
  "arr": [1, 2, [3]],
  "obj": {"nested": "yes"}
})";
  const Json j = Json::parse(doc);
  EXPECT_EQ(Json::parse(j.dump()), j);
  EXPECT_EQ(Json::parse(j.dump(0)), j);
}

TEST(JsonParse, RejectsDuplicateKeys) {
  EXPECT_THROW(Json::parse(R"({"a": 1, "a": 2})"), JsonParseError);
}

TEST(JsonParse, RejectsTrailingGarbage) {
  EXPECT_THROW(Json::parse("{} x"), JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse(R"({"a"})"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
}

TEST(JsonParse, ErrorCarriesByteOffset) {
  try {
    Json::parse("[1, ?]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

TEST(JsonEquality, NumbersComparedByValue) {
  EXPECT_EQ(Json(2), Json(2.0));
  EXPECT_NE(Json(2), Json(3));
  EXPECT_NE(Json(2), Json("2"));
}

TEST(JsonDump, PrettyPrintIsStable) {
  Json j = Json::object();
  j.set("bench", "demo");
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2);
  j.set("values", std::move(arr));
  EXPECT_EQ(j.dump(2),
            "{\n  \"bench\": \"demo\",\n  \"values\": [\n    1,\n    2\n  ]\n}");
}

}  // namespace
}  // namespace ncar::bench
