// run_gate on synthetic fixture directories: exit codes, per-bench
// statuses, summary roll-up, and --update-baselines.

#include "harness/gate.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/baseline.hpp"
#include "harness/expectation.hpp"
#include "harness/json.hpp"
#include "harness/reporter.hpp"

namespace fs = std::filesystem;

namespace ncar::bench {
namespace {

/// Fresh results/ + baselines/ pair under the gtest temp dir, torn down
/// per test.
class GateTest : public testing::Test {
protected:
  void SetUp() override {
    root_ = fs::path(testing::TempDir()) /
            ("gate_" + std::string(testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_ / "results");
    fs::create_directories(root_ / "baselines");
  }
  void TearDown() override { fs::remove_all(root_); }

  /// A minimal result-v1 document with two metrics and one expectation.
  Json make_result(const std::string& bench, double mflops,
                   double seconds, bool expectation_passes = true) const {
    Json j = Json::object();
    j.set("schema", "sx4ncar-bench-result-v1");
    j.set("bench", bench);
    j.set("full_mode", false);
    Json ms = Json::object();
    ms.set(bench + ".mflops", mflops);
    ms.set(bench + ".seconds", seconds);
    j.set("metrics", std::move(ms));
    Expectation e;
    e.metric = bench + ".mflops";
    e.band = Band::relative(mflops, 0.25);
    e.source = "fixture";
    e.actual = expectation_passes ? mflops : mflops * 10;
    e.passed = e.band.contains(e.actual);
    Json exps = Json::array();
    exps.push_back(e.to_json());
    j.set("expectations", std::move(exps));
    j.set("expectations_failed", e.passed ? 0 : 1);
    j.set("passed", e.passed);
    return j;
  }

  void write(const fs::path& rel, const Json& j) const {
    std::ofstream(root_ / rel) << j.dump() << '\n';
  }

  GateOptions opts() const {
    GateOptions o;
    o.results_dir = (root_ / "results").string();
    o.baselines_dir = (root_ / "baselines").string();
    o.summary_path = (root_ / "BENCH_SUMMARY.json").string();
    return o;
  }

  Json read_summary() const {
    std::ifstream in(root_ / "BENCH_SUMMARY.json");
    std::ostringstream ss;
    ss << in.rdbuf();
    return Json::parse(ss.str());
  }

  static const GateEntry* entry(const GateReport& r, const std::string& b) {
    for (const auto& e : r.entries) {
      if (e.bench == b) return &e;
    }
    return nullptr;
  }

  fs::path root_;
  std::ostringstream log_;
};

TEST_F(GateTest, MatchingResultsPass) {
  const Json result = make_result("demo", 537.0, 226.62);
  write("results/demo.json", result);
  write("baselines/demo.json", result_to_baseline(result).to_json());

  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 0);
  ASSERT_NE(entry(report, "demo"), nullptr);
  EXPECT_EQ(entry(report, "demo")->status, "ok");
  EXPECT_EQ(entry(report, "demo")->metrics_checked, 2);
  EXPECT_TRUE(read_summary().at("ok").as_bool());
}

TEST_F(GateTest, InjectedTwentyPercentRegressionFails) {
  const Json good = make_result("demo", 537.0, 226.62);
  write("baselines/demo.json", result_to_baseline(good).to_json());
  write("results/demo.json", make_result("demo", 537.0 * 0.8, 226.62));

  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 1);
  EXPECT_EQ(entry(report, "demo")->status, "regressed");
  EXPECT_EQ(entry(report, "demo")->regressed, 1);
  EXPECT_FALSE(read_summary().at("ok").as_bool());
  EXPECT_EQ(read_summary().at("total_regressed").as_number(), 1);
}

TEST_F(GateTest, MissingMetricFails) {
  const Json good = make_result("demo", 537.0, 226.62);
  write("baselines/demo.json", result_to_baseline(good).to_json());
  Json shrunk = make_result("demo", 537.0, 226.62);
  Json ms = Json::object();
  ms.set("demo.mflops", 537.0);  // drops demo.seconds
  shrunk.set("metrics", std::move(ms));
  write("results/demo.json", shrunk);

  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 1);
  EXPECT_EQ(entry(report, "demo")->status, "regressed");
  EXPECT_EQ(entry(report, "demo")->missing_metrics, 1);
}

TEST_F(GateTest, MissingResultFileFails) {
  write("baselines/demo.json",
        result_to_baseline(make_result("demo", 537.0, 226.62)).to_json());

  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 1);
  EXPECT_EQ(entry(report, "demo")->status, "missing-result");
}

TEST_F(GateTest, ModeMismatchFails) {
  const Json quick = make_result("demo", 537.0, 226.62);
  write("baselines/demo.json", result_to_baseline(quick).to_json());
  Json full = make_result("demo", 537.0, 226.62);
  full.set("full_mode", true);
  write("results/demo.json", full);

  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 1);
  EXPECT_EQ(entry(report, "demo")->status, "mode-mismatch");
}

TEST_F(GateTest, FailedRecordedExpectationFails) {
  const Json result = make_result("demo", 537.0, 226.62,
                                  /*expectation_passes=*/false);
  write("results/demo.json", result);
  write("baselines/demo.json", result_to_baseline(result).to_json());

  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 1);
  EXPECT_EQ(entry(report, "demo")->status, "expectation-failed");
  EXPECT_EQ(entry(report, "demo")->expectations_failed, 1);
}

TEST_F(GateTest, ResultWithoutBaselineIsNotAFailure) {
  // Host-timing benches (micro_substrates) deliberately have no committed
  // baseline; the gate must not fail on them.
  write("results/hosty.json", make_result("hosty", 100.0, 1.0));

  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 0);
  EXPECT_EQ(entry(report, "hosty")->status, "no-baseline");
}

TEST_F(GateTest, ResultWithoutBaselineStillGatesItsExpectations) {
  write("results/hosty.json",
        make_result("hosty", 100.0, 1.0, /*expectation_passes=*/false));

  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 1);
  EXPECT_EQ(entry(report, "hosty")->status, "expectation-failed");
}

TEST_F(GateTest, CorruptResultFails) {
  write("baselines/demo.json",
        result_to_baseline(make_result("demo", 537.0, 226.62)).to_json());
  std::ofstream(root_ / "results/demo.json") << "{broken";

  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 1);
  EXPECT_EQ(entry(report, "demo")->status, "invalid-result");
}

TEST_F(GateTest, MissingDirectoriesAreConfigErrors) {
  GateOptions o = opts();
  o.results_dir = (root_ / "nope").string();
  EXPECT_EQ(run_gate(o, log_), 2);

  o = opts();
  fs::remove_all(o.baselines_dir);
  write("results/demo.json", make_result("demo", 537.0, 226.62));
  EXPECT_EQ(run_gate(o, log_), 2);
}

TEST_F(GateTest, UpdateBaselinesWritesLoadableFiles) {
  const Json result = make_result("demo", 537.0, 226.62);
  write("results/demo.json", result);

  GateOptions o = opts();
  o.update_baselines = true;
  EXPECT_EQ(run_gate(o, log_), 0);

  const Baseline b =
      Baseline::load((root_ / "baselines/demo.json").string());
  EXPECT_EQ(b.bench, "demo");
  ASSERT_EQ(b.metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(b.metrics[0].value, 537.0);

  // And a subsequent gate run against the fresh baselines passes.
  EXPECT_EQ(run_gate(opts(), log_), 0);
}

TEST_F(GateTest, SummaryEntriesAreSortedByBench) {
  for (const char* name : {"zeta", "alpha", "mid"}) {
    const Json r = make_result(name, 100.0, 1.0);
    write(fs::path("results") / (std::string(name) + ".json"), r);
    write(fs::path("baselines") / (std::string(name) + ".json"),
          result_to_baseline(r).to_json());
  }
  GateReport report;
  EXPECT_EQ(run_gate(opts(), log_, &report), 0);
  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.entries[0].bench, "alpha");
  EXPECT_EQ(report.entries[1].bench, "mid");
  EXPECT_EQ(report.entries[2].bench, "zeta");
}

}  // namespace
}  // namespace ncar::bench
