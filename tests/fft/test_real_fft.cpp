#include "fft/real_fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace ncar;
using fft::cd;
using fft::Plan;

std::vector<double> random_reals(long n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  return x;
}

TEST(RealFft, SpectrumSizeIsHalfPlusOne) {
  EXPECT_EQ(fft::spectrum_size(8), 5);
  EXPECT_EQ(fft::spectrum_size(9), 5);
  EXPECT_EQ(fft::spectrum_size(2), 2);
}

TEST(RealFft, DcBinIsSum) {
  const long n = 48;
  Plan plan(n);
  auto x = random_reals(n, 5);
  std::vector<cd> spec(static_cast<std::size_t>(fft::spectrum_size(n)));
  fft::real_forward(plan, x, spec);
  double sum = 0;
  for (double v : x) sum += v;
  EXPECT_NEAR(spec[0].real(), sum, 1e-10);
  EXPECT_NEAR(spec[0].imag(), 0.0, 1e-10);
}

TEST(RealFft, NyquistBinIsRealForEvenLengths) {
  const long n = 64;
  Plan plan(n);
  auto x = random_reals(n, 6);
  std::vector<cd> spec(static_cast<std::size_t>(fft::spectrum_size(n)));
  fft::real_forward(plan, x, spec);
  EXPECT_NEAR(spec.back().imag(), 0.0, 1e-10);
}

TEST(RealFft, CosineLandsInItsBin) {
  const long n = 96;
  Plan plan(n);
  std::vector<double> x(static_cast<std::size_t>(n));
  const long bin = 5;
  for (long j = 0; j < n; ++j) {
    x[static_cast<std::size_t>(j)] =
        std::cos(2.0 * M_PI * static_cast<double>(bin * j) / n);
  }
  std::vector<cd> spec(static_cast<std::size_t>(fft::spectrum_size(n)));
  fft::real_forward(plan, x, spec);
  EXPECT_NEAR(spec[bin].real(), n / 2.0, 1e-9);
  for (long k = 0; k < fft::spectrum_size(n); ++k) {
    if (k != bin) {
      EXPECT_NEAR(std::abs(spec[static_cast<std::size_t>(k)]), 0.0, 1e-8);
    }
  }
}

TEST(RealFft, WrongBufferSizesThrow) {
  Plan plan(16);
  std::vector<double> x(16);
  std::vector<cd> small(4);
  EXPECT_THROW(fft::real_forward(plan, x, small), ncar::precondition_error);
}

class RealFftParam : public ::testing::TestWithParam<long> {};

TEST_P(RealFftParam, RoundTripIsIdentity) {
  const long n = GetParam();
  Plan plan(n);
  auto x = random_reals(n, 100 + static_cast<std::uint64_t>(n));
  std::vector<cd> spec(static_cast<std::size_t>(fft::spectrum_size(n)));
  std::vector<double> back(static_cast<std::size_t>(n));
  fft::real_forward(plan, x, spec);
  fft::real_inverse(plan, spec, back);
  for (long j = 0; j < n; ++j) {
    EXPECT_NEAR(back[static_cast<std::size_t>(j)],
                x[static_cast<std::size_t>(j)], 1e-11 * n)
        << "n=" << n;
  }
}

TEST_P(RealFftParam, MatchesNaiveDftHalfSpectrum) {
  const long n = GetParam();
  Plan plan(n);
  auto x = random_reals(n, 200 + static_cast<std::uint64_t>(n));
  std::vector<cd> spec(static_cast<std::size_t>(fft::spectrum_size(n)));
  fft::real_forward(plan, x, spec);
  std::vector<cd> cin(static_cast<std::size_t>(n)), ref(static_cast<std::size_t>(n));
  for (long j = 0; j < n; ++j) cin[static_cast<std::size_t>(j)] = cd(x[static_cast<std::size_t>(j)], 0);
  fft::naive_dft(cin, ref, false);
  for (long k = 0; k < fft::spectrum_size(n); ++k) {
    EXPECT_NEAR(std::abs(spec[static_cast<std::size_t>(k)] -
                         ref[static_cast<std::size_t>(k)]),
                0.0, 1e-9 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperLengthFamilies, RealFftParam,
                         ::testing::Values(2, 3, 4, 5, 6, 10, 12, 20, 48, 64,
                                           80, 96, 128, 160, 192, 256, 320,
                                           384, 512, 640, 768, 1024, 1280));

}  // namespace
