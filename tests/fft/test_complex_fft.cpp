#include "fft/complex_fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace ncar;
using fft::cd;
using fft::Plan;

std::vector<cd> random_signal(long n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cd> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return x;
}

TEST(Plan, SupportedLengths) {
  EXPECT_TRUE(Plan::supported(1));
  EXPECT_TRUE(Plan::supported(2));
  EXPECT_TRUE(Plan::supported(360));   // 2^3 * 3^2 * 5
  EXPECT_TRUE(Plan::supported(1280));  // 5 * 2^8
  EXPECT_FALSE(Plan::supported(7));
  EXPECT_FALSE(Plan::supported(14));
  EXPECT_FALSE(Plan::supported(0));
  EXPECT_FALSE(Plan::supported(-4));
}

TEST(Plan, FactorsMultiplyToLength) {
  for (long n : {2L, 12L, 60L, 360L, 1280L}) {
    Plan p(n);
    long prod = 1;
    for (int f : p.factors()) prod *= f;
    EXPECT_EQ(prod, n);
  }
}

TEST(Plan, UnsupportedLengthThrows) {
  EXPECT_THROW(Plan(7), ncar::precondition_error);
  EXPECT_THROW(Plan(22), ncar::precondition_error);
}

TEST(Plan, BufferSizeMismatchThrows) {
  Plan p(8);
  std::vector<cd> a(8), b(4);
  EXPECT_THROW(p.forward(a, b), ncar::precondition_error);
}

TEST(ComplexFft, DeltaTransformsToConstant) {
  Plan p(16);
  std::vector<cd> in(16, cd(0, 0)), out(16);
  in[0] = cd(1, 0);
  p.forward(in, out);
  for (const auto& v : out) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(ComplexFft, ConstantTransformsToDelta) {
  Plan p(12);
  std::vector<cd> in(12, cd(1, 0)), out(12);
  p.forward(in, out);
  EXPECT_NEAR(out[0].real(), 12.0, 1e-12);
  for (std::size_t k = 1; k < 12; ++k) {
    EXPECT_NEAR(std::abs(out[k]), 0.0, 1e-12);
  }
}

TEST(ComplexFft, SingleToneLandsInOneBin) {
  const long n = 40;
  Plan p(n);
  std::vector<cd> in(static_cast<std::size_t>(n)), out(static_cast<std::size_t>(n));
  const long bin = 7;
  for (long j = 0; j < n; ++j) {
    const double ang = 2.0 * M_PI * static_cast<double>(bin * j) / n;
    in[static_cast<std::size_t>(j)] = cd(std::cos(ang), std::sin(ang));
  }
  p.forward(in, out);
  EXPECT_NEAR(std::abs(out[bin]), static_cast<double>(n), 1e-10);
  for (long k = 0; k < n; ++k) {
    if (k != bin) EXPECT_NEAR(std::abs(out[static_cast<std::size_t>(k)]), 0.0, 1e-9);
  }
}

TEST(ComplexFft, LinearityHolds) {
  const long n = 30;
  Plan p(n);
  auto x = random_signal(n, 1), y = random_signal(n, 2);
  std::vector<cd> fx(30), fy(30), z(30), fz(30);
  p.forward(x, fx);
  p.forward(y, fy);
  const cd a(1.5, -0.5), b(-2.0, 0.25);
  for (long j = 0; j < n; ++j) {
    z[static_cast<std::size_t>(j)] = a * x[static_cast<std::size_t>(j)] +
                                     b * y[static_cast<std::size_t>(j)];
  }
  p.forward(z, fz);
  for (long k = 0; k < n; ++k) {
    const cd want = a * fx[static_cast<std::size_t>(k)] +
                    b * fy[static_cast<std::size_t>(k)];
    EXPECT_NEAR(std::abs(fz[static_cast<std::size_t>(k)] - want), 0.0, 1e-10);
  }
}

TEST(ComplexFft, ParsevalEnergyConserved) {
  const long n = 240;
  Plan p(n);
  auto x = random_signal(n, 3);
  std::vector<cd> fx(static_cast<std::size_t>(n));
  p.forward(x, fx);
  double et = 0, ef = 0;
  for (const auto& v : x) et += std::norm(v);
  for (const auto& v : fx) ef += std::norm(v);
  EXPECT_NEAR(ef, et * n, 1e-8 * et * n);
}

class FftLengthParam : public ::testing::TestWithParam<long> {};

TEST_P(FftLengthParam, MatchesNaiveDft) {
  const long n = GetParam();
  Plan p(n);
  auto x = random_signal(n, 1000 + static_cast<std::uint64_t>(n));
  std::vector<cd> fast(static_cast<std::size_t>(n)), ref(static_cast<std::size_t>(n));
  p.forward(x, fast);
  fft::naive_dft(x, ref, false);
  for (long k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fast[static_cast<std::size_t>(k)] -
                         ref[static_cast<std::size_t>(k)]),
                0.0, 1e-9 * n)
        << "n=" << n << " k=" << k;
  }
}

TEST_P(FftLengthParam, InverseRecoversInputTimesN) {
  const long n = GetParam();
  Plan p(n);
  auto x = random_signal(n, 2000 + static_cast<std::uint64_t>(n));
  std::vector<cd> f(static_cast<std::size_t>(n)), back(static_cast<std::size_t>(n));
  p.forward(x, f);
  p.inverse(f, back);
  for (long j = 0; j < n; ++j) {
    const cd want = x[static_cast<std::size_t>(j)] * static_cast<double>(n);
    EXPECT_NEAR(std::abs(back[static_cast<std::size_t>(j)] - want), 0.0, 1e-9 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(MixedRadixLengths, FftLengthParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 12, 15,
                                           16, 20, 30, 45, 64, 100, 120, 128,
                                           192, 256, 320, 375, 512, 768,
                                           1280));

}  // namespace
