#include "fft/style_bench.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

namespace {

using namespace ncar;

class StyleBenchTest : public ::testing::Test {
protected:
  StyleBenchTest() : node(single_cpu()), cpu(node.cpu(0)) {}
  static sxs::MachineConfig single_cpu() {
    auto c = sxs::MachineConfig::sx4_benchmarked();
    c.cpus_per_node = 1;
    return c;
  }
  sxs::Node node;
  sxs::Cpu& cpu;
};

TEST_F(StyleBenchTest, RfftVerifiesNumerics) {
  const auto p = fft::run_rfft(cpu, 64, 100, 3);
  EXPECT_TRUE(p.verified);
  EXPECT_GT(p.mflops, 0.0);
}

TEST_F(StyleBenchTest, VfftVerifiesNumerics) {
  const auto p = fft::run_vfft(cpu, 64, 100, 3);
  EXPECT_TRUE(p.verified);
}

TEST_F(StyleBenchTest, VfftOrderOfMagnitudeFasterThanRfft) {
  // The paper's headline for section 4.3.
  const auto r = fft::run_rfft(cpu, 256, 4000, 3);
  const auto v = fft::run_vfft(cpu, 256, 500, 3);
  const double ratio = v.mflops / r.mflops;
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 25.0);
}

TEST_F(StyleBenchTest, VfftRateGrowsWithInstanceCount) {
  double prev = 0;
  for (long m : {1L, 10L, 100L, 500L}) {
    const auto p = fft::run_vfft(cpu, 128, m, 3);
    EXPECT_GT(p.mflops, prev);
    prev = p.mflops;
  }
}

TEST_F(StyleBenchTest, UnsupportedLengthThrows) {
  EXPECT_THROW(fft::run_rfft(cpu, 7, 10, 3), ncar::precondition_error);
  EXPECT_THROW(fft::run_vfft(cpu, 14, 10, 3), ncar::precondition_error);
}

TEST(FftFlops, GrowsNLogN) {
  // flops(2n) / flops(n) approaches 2 * (log n + 1)/log n > 2.
  const double f256 = fft::rfft_flops(256);
  const double f512 = fft::rfft_flops(512);
  EXPECT_GT(f512, 2.0 * f256);
  EXPECT_LT(f512, 2.5 * f256);
}

TEST(FftFlops, RadixFamiliesAllPositive) {
  for (long n : {2L, 3L, 5L, 12L, 80L, 1280L}) {
    EXPECT_GT(fft::rfft_flops(n), 0.0);
  }
}

TEST(FftSchedules, RfftScheduleMatchesPaperFamilies) {
  const auto sched = fft::rfft_schedule();
  // 10 powers of two + 9 of 3*2^n + 9 of 5*2^n = 28 lengths.
  EXPECT_EQ(sched.size(), 28u);
  for (auto [n, m] : sched) {
    EXPECT_GE(n, 2);
    EXPECT_LE(n, 1280);
    EXPECT_LE(m, 500'000);  // paper: M from 500,000 down to 800
    EXPECT_GE(m, 1);
  }
}

TEST(FftSchedules, VfftLengthsMatchPaperTable) {
  const auto ls = fft::vfft_lengths();
  EXPECT_EQ(ls.size(), 16u);
  for (long n : {4L, 512L, 3L, 768L, 5L, 1280L}) {
    EXPECT_NE(std::find(ls.begin(), ls.end(), n), ls.end()) << n;
  }
}

TEST(FftSchedules, VfftInstancesMatchPaperList) {
  const auto ms = fft::vfft_instances();
  ASSERT_EQ(ms.size(), 9u);
  EXPECT_EQ(ms.front(), 1);
  EXPECT_EQ(ms.back(), 500);
}

}  // namespace
