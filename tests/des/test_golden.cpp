// Golden determinism tests (ISSUE 6 satellite): the DES-ported scheduler
// and SFS must reproduce the pre-port results bit-exactly.
//
// Two layers of pinning:
//   * a verbatim copy of the legacy drain-clock loops (scheduler + SFS as
//     they were before the port) lives in this file as the reference;
//     randomized workloads must match it double-for-double;
//   * the PRODLOAD bench's four test times are pinned to the exact
//     doubles committed in bench/baselines/prodload.json.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "ccm2/model.hpp"
#include "iosim/disk.hpp"
#include "iosim/hippi.hpp"
#include "iosim/sfs.hpp"
#include "prodload/scheduler.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

namespace {

using ncar::Bytes;
using ncar::Seconds;

// ---------------------------------------------------------------------------
// The legacy scheduler loop, verbatim (pre-DES drain clock).

struct LegacyRunning {
  int seq, job, comp, cpus;
  double remaining;
};
struct LegacyWaiting {
  int seq, job, comp, cpus;
  double busy;
  long fifo;
};

ncar::prodload::RunResult legacy_run(
    const std::vector<ncar::prodload::Sequence>& sequences, int total_cpus,
    double contention_per_cpu) {
  using ncar::prodload::RunResult;
  RunResult result;
  const std::size_t nseq = sequences.size();
  std::vector<std::size_t> next_job(nseq, 0);
  std::vector<int> live_components(nseq, 0);
  std::vector<double> job_start(nseq, 0);
  std::vector<LegacyRunning> running;
  std::vector<LegacyWaiting> waiting;
  long fifo_counter = 0;
  int used_cpus = 0;
  double now = 0;

  auto admit_job = [&](int seq, double t) {
    const auto& job = sequences[static_cast<std::size_t>(seq)]
                          .jobs[next_job[static_cast<std::size_t>(seq)]];
    live_components[static_cast<std::size_t>(seq)] =
        static_cast<int>(job.components.size());
    job_start[static_cast<std::size_t>(seq)] = t;
    for (std::size_t c = 0; c < job.components.size(); ++c) {
      waiting.push_back(
          {seq, static_cast<int>(next_job[static_cast<std::size_t>(seq)]),
           static_cast<int>(c), job.components[c].cpus,
           job.components[c].busy.value(), fifo_counter++});
    }
  };

  auto start_waiting = [&] {
    std::sort(waiting.begin(), waiting.end(),
              [](const LegacyWaiting& a, const LegacyWaiting& b) {
                return a.fifo < b.fifo;
              });
    for (auto it = waiting.begin(); it != waiting.end();) {
      if (it->cpus <= total_cpus - used_cpus) {
        running.push_back({it->seq, it->job, it->comp, it->cpus, it->busy});
        used_cpus += it->cpus;
        it = waiting.erase(it);
      } else {
        break;
      }
    }
  };

  for (std::size_t s = 0; s < nseq; ++s) admit_job(static_cast<int>(s), 0.0);
  start_waiting();

  while (!running.empty()) {
    const double factor =
        1.0 + contention_per_cpu * std::max(0, used_cpus - 1);
    double dt = std::numeric_limits<double>::infinity();
    for (const auto& r : running) dt = std::min(dt, r.remaining * factor);
    now += dt;
    for (auto& r : running) r.remaining -= dt / factor;
    for (auto it = running.begin(); it != running.end();) {
      if (it->remaining <= 1e-12) {
        used_cpus -= it->cpus;
        const int seq = it->seq;
        it = running.erase(it);
        if (--live_components[static_cast<std::size_t>(seq)] == 0) {
          const auto& sequence = sequences[static_cast<std::size_t>(seq)];
          const double started = job_start[static_cast<std::size_t>(seq)];
          result.jobs.push_back(
              {sequence.name + "/" +
                   sequence.jobs[next_job[static_cast<std::size_t>(seq)]].name,
               Seconds(started), Seconds(now)});
          if (++next_job[static_cast<std::size_t>(seq)] <
              sequence.jobs.size()) {
            admit_job(seq, now);
          }
        }
      } else {
        ++it;
      }
    }
    start_waiting();
  }
  result.makespan = Seconds(now);
  return result;
}

// ---------------------------------------------------------------------------

std::vector<ncar::prodload::Sequence> random_workload(std::mt19937_64& rng,
                                                      int total_cpus) {
  std::uniform_int_distribution<int> nseq(1, 4), njobs(1, 3), ncomp(1, 3);
  std::uniform_int_distribution<int> cpus(1, total_cpus);
  std::uniform_real_distribution<double> busy(0.5, 100.0);
  std::vector<ncar::prodload::Sequence> seqs(
      static_cast<std::size_t>(nseq(rng)));
  for (std::size_t s = 0; s < seqs.size(); ++s) {
    seqs[s].name = "seq" + std::to_string(s);
    seqs[s].jobs.resize(static_cast<std::size_t>(njobs(rng)));
    for (std::size_t j = 0; j < seqs[s].jobs.size(); ++j) {
      auto& job = seqs[s].jobs[j];
      job.name = "job" + std::to_string(j);
      job.components.resize(static_cast<std::size_t>(ncomp(rng)));
      for (std::size_t c = 0; c < job.components.size(); ++c) {
        job.components[c] = {"comp" + std::to_string(c), cpus(rng),
                             Seconds(busy(rng))};
      }
    }
  }
  return seqs;
}

TEST(GoldenScheduler, RandomWorkloadsMatchLegacyLoopBitExactly) {
  std::mt19937_64 rng(0x90211);
  for (int trial = 0; trial < 200; ++trial) {
    const int total_cpus = 8;
    const double contention = (trial % 3 == 0) ? 0.0 : 6.8e-4;
    const auto seqs = random_workload(rng, total_cpus);
    const auto expected = legacy_run(seqs, total_cpus, contention);
    const ncar::prodload::Scheduler sched(total_cpus, contention);
    const auto got = sched.run(seqs);
    ASSERT_EQ(got.jobs.size(), expected.jobs.size()) << "trial " << trial;
    EXPECT_EQ(got.makespan.value(), expected.makespan.value())
        << "trial " << trial;
    for (std::size_t i = 0; i < got.jobs.size(); ++i) {
      EXPECT_EQ(got.jobs[i].name, expected.jobs[i].name) << "trial " << trial;
      EXPECT_EQ(got.jobs[i].start.value(), expected.jobs[i].start.value())
          << "trial " << trial << " job " << i;
      EXPECT_EQ(got.jobs[i].end.value(), expected.jobs[i].end.value())
          << "trial " << trial << " job " << i;
    }
  }
}

// The four PRODLOAD test times, pinned to the exact doubles committed in
// bench/baselines/prodload.json. This is the bench's computation
// (bench/prodload.cpp) replayed through the DES-ported scheduler.
TEST(GoldenScheduler, ProdloadBaselineDoublesAreBitIdentical) {
  using namespace ncar;
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(cfg);

  auto ccm2_days = [&](const ccm2::Resolution& res, int cpus, double days) {
    ccm2::Ccm2Config c;
    c.res = res;
    c.active_levels = 1;
    ccm2::Ccm2 model(c, node);
    node.reset();
    const double per_step = model.measure_charge_seconds(cpus, 2);
    return Seconds(per_step * res.steps_per_day() * days);
  };
  const Seconds t42_20d = ccm2_days(ccm2::t42l18(), 2, 20.0);
  const Seconds t106_3d = ccm2_days(ccm2::t106l18(), 8, 3.0);
  const Seconds t170_2d = ccm2_days(ccm2::t170l18(), 16, 2.0);
  iosim::HippiChannel hippi(cfg);
  const Seconds hippi_test =
      hippi.transfer_seconds(Bytes(10e9), Bytes(1 << 20));

  prodload::Job job;
  job.name = "job";
  job.components = {
      {"HIPPI", 1, hippi_test},
      {"CCM2 T106 3-day", 8, t106_3d},
      {"CCM2 T42 20-day A", 2, t42_20d},
      {"CCM2 T42 20-day B", 2, t42_20d},
  };
  auto make_seq = [&](const std::string& name) {
    prodload::Sequence s;
    s.name = name;
    for (int j = 0; j < 4; ++j) {
      prodload::Job numbered = job;
      numbered.name = "job" + std::to_string(j + 1);
      s.jobs.push_back(numbered);
    }
    return s;
  };

  prodload::Scheduler sched(cfg.cpus_per_node, cfg.bank_contention_per_cpu);
  EXPECT_EQ(sched.run({make_seq("seq1")}).makespan.value(),
            1508.4445278106048);
  EXPECT_EQ(sched.run({make_seq("seq1"), make_seq("seq2")}).makespan.value(),
            1519.1566113018444);
  EXPECT_EQ(sched
                .run({make_seq("seq1"), make_seq("seq2"), make_seq("seq3"),
                      make_seq("seq4")})
                .makespan.value(),
            2352.9917164935932);
  prodload::Sequence t170a{"t170a",
                           {{"T170 2-day", {{"CCM2 T170", 16, t170_2d}}}}};
  prodload::Sequence t170b{"t170b",
                           {{"T170 2-day", {{"CCM2 T170", 16, t170_2d}}}}};
  EXPECT_EQ(sched.run({t170a, t170b}).makespan.value(), 504.54412713416156);
}

// ---------------------------------------------------------------------------
// The legacy SFS drain clock, verbatim (pre-calendar), against the ported
// Sfs over a mixed op sequence. Each side gets its own DiskSystem so the
// accounting comparison is apples to apples.

struct LegacySfs {
  ncar::iosim::SfsConfig cfg;
  double xmu_bw;
  ncar::iosim::DiskSystem* disk;
  double now = 0, dirty = 0, resident = 0;

  void drain_until(double t) {
    if (t <= now) return;
    const double window = t - now;
    const double rate = disk->streaming_bytes_per_s().value();
    const double drained = std::min(dirty, rate * window);
    if (drained > 0) {
      disk->record_transfer(Bytes(drained), Seconds(drained / rate));
      dirty -= drained;
      resident = std::min(cfg.cache.value(), resident + drained);
    }
    now = t;
  }
  double write(double bytes) {
    double wait = 0, remaining = bytes;
    while (remaining > 0) {
      const double unit = std::min(remaining, cfg.staging_unit.value());
      const double free_space = cfg.cache.value() - dirty;
      if (unit > free_space) {
        const double stall =
            (unit - free_space) / disk->streaming_bytes_per_s().value();
        drain_until(now + stall);
        wait += stall;
      }
      const double t = unit / xmu_bw;
      drain_until(now + t);
      wait += t;
      dirty += unit;
      remaining -= unit;
    }
    return wait;
  }
  double read(double bytes) {
    const double cached = std::min(bytes, resident + dirty);
    const double from_disk = bytes - cached;
    double t = cached / xmu_bw;
    if (from_disk > 0) {
      t += disk->sequential_seconds(Bytes(from_disk)).value();
      disk->record_transfer(Bytes(from_disk),
                            disk->sequential_seconds(Bytes(from_disk)));
    }
    drain_until(now + t);
    return t;
  }
  double flush() {
    const double wait = dirty / disk->streaming_bytes_per_s().value();
    drain_until(now + wait);
    return wait;
  }
};

TEST(GoldenSfs, MixedOpSequenceMatchesLegacyClockBitExactly) {
  using namespace ncar;
  const auto machine = sxs::MachineConfig::sx4_benchmarked();
  iosim::SfsConfig cfg;
  cfg.cache = Bytes(64.0 * 1024 * 1024);
  cfg.staging_unit = Bytes(4.0 * 1024 * 1024);

  iosim::DiskSystem disk_new, disk_ref;
  iosim::Sfs sfs(machine, disk_new, cfg);
  LegacySfs ref{cfg, machine.xmu_bandwidth().value(), &disk_ref};

  std::mt19937_64 rng(0x5F5);
  std::uniform_real_distribution<double> size(1.0, 200.0 * 1024 * 1024);
  std::uniform_real_distribution<double> gap(0.0, 0.5);
  std::uniform_int_distribution<int> op(0, 9);
  for (int i = 0; i < 300; ++i) {
    const int o = op(rng);
    if (o < 5) {
      const double b = size(rng);
      EXPECT_EQ(sfs.write(Bytes(b)).value(), ref.write(b)) << "op " << i;
    } else if (o < 8) {
      const double b = size(rng);
      EXPECT_EQ(sfs.read(Bytes(b)).value(), ref.read(b)) << "op " << i;
    } else if (o < 9) {
      const double g = gap(rng);
      sfs.advance(Seconds(g));
      ref.drain_until(ref.now + g);
    } else {
      EXPECT_EQ(sfs.flush().value(), ref.flush()) << "op " << i;
    }
    ASSERT_EQ(sfs.now().value(), ref.now) << "op " << i;
    ASSERT_EQ(sfs.dirty_bytes().value(), ref.dirty) << "op " << i;
  }
  EXPECT_EQ(disk_new.total_bytes().value(), disk_ref.total_bytes().value());
  EXPECT_EQ(disk_new.busy_seconds().value(), disk_ref.busy_seconds().value());
  // The port actually exercised the calendar: the cache ran dry at least
  // once, each time through a popped drain-complete event.
  EXPECT_GT(sfs.drain_completions(), 0u);
}

}  // namespace
