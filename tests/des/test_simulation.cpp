// Simulation façade tests: typed clock, monotone time, cancellation and
// rescheduling through the kernel, run_until semantics, stop().

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "des/simulation.hpp"

namespace {

using ncar::Seconds;
using ncar::des::EventId;
using ncar::des::Simulation;

TEST(SimulationTest, ExecutesInTimeOrderAndAdvancesClock) {
  Simulation sim;
  std::vector<double> seen;
  sim.at(Seconds(3.0), [&] { seen.push_back(sim.now().value()); });
  sim.at(Seconds(1.0), [&] { seen.push_back(sim.now().value()); });
  sim.at(Seconds(2.0), [&] { seen.push_back(sim.now().value()); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(sim.now().value(), 3.0);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulationTest, HandlersScheduleHandlers) {
  Simulation sim;
  std::string log;
  sim.at(Seconds(1.0), [&] {
    log += 'a';
    sim.in(Seconds(1.0), [&] { log += 'c'; });
    sim.at(Seconds(1.5), [&] { log += 'b'; });
  });
  sim.run();
  EXPECT_EQ(log, "abc");
  EXPECT_EQ(sim.now().value(), 2.0);
}

TEST(SimulationTest, SchedulingIntoThePastThrows) {
  Simulation sim;
  sim.at(Seconds(5.0), [] {});
  sim.run();
  EXPECT_THROW(sim.at(Seconds(4.0), [] {}), ncar::precondition_error);
  EXPECT_THROW(sim.in(Seconds(-1.0), [] {}), ncar::precondition_error);
  // Scheduling exactly at now() is allowed (zero-delay events).
  sim.at(Seconds(5.0), [] {});
  EXPECT_EQ(sim.run(), 1u);
}

TEST(SimulationTest, CancelAndReschedule) {
  Simulation sim;
  std::vector<char> seen;
  const EventId a = sim.at(Seconds(1.0), [&] { seen.push_back('a'); });
  const EventId b = sim.at(Seconds(2.0), [&] { seen.push_back('b'); });
  sim.at(Seconds(3.0), [&] { seen.push_back('c'); });
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_TRUE(sim.reschedule(b, Seconds(4.0)));
  sim.run();
  EXPECT_EQ(seen, (std::vector<char>{'c', 'b'}));
  EXPECT_EQ(sim.now().value(), 4.0);
}

TEST(SimulationTest, RescheduleIntoThePastThrows) {
  Simulation sim;
  const EventId a = sim.at(Seconds(10.0), [] {});
  sim.at(Seconds(5.0), [&] {
    EXPECT_THROW(sim.reschedule(a, Seconds(1.0)), ncar::precondition_error);
  });
  sim.run();
}

TEST(SimulationTest, RunUntilExecutesDueEventsAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.at(Seconds(1.0), [&] { ++fired; });
  sim.at(Seconds(2.0), [&] { ++fired; });
  sim.at(Seconds(10.0), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(Seconds(5.0)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now().value(), 5.0);  // clock lands on `until`, not an event
  EXPECT_EQ(sim.calendar().size(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulationTest, StopHaltsAfterCurrentEvent) {
  Simulation sim;
  int fired = 0;
  sim.at(Seconds(1.0), [&] { ++fired; });
  sim.at(Seconds(2.0), [&] {
    ++fired;
    sim.stop();
  });
  sim.at(Seconds(3.0), [&] { ++fired; });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sim.stopped());
  // A later run() resumes from where it stopped.
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(SimulationTest, SameTimeOrdersByPriorityThenFifo) {
  Simulation sim;
  std::string log;
  sim.at(Seconds(1.0), 1, [&] { log += 'c'; });
  sim.at(Seconds(1.0), 0, [&] { log += 'a'; });
  sim.at(Seconds(1.0), 0, [&] { log += 'b'; });
  sim.run();
  EXPECT_EQ(log, "abc");
}

}  // namespace
