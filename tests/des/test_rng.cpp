// RNG-stream independence tests (ISSUE 6 satellite): a named stream's
// draw sequence must be byte-identical no matter what other streams do in
// between, no matter the stream creation order, and no matter how the
// consuming simulation interleaves event execution. Counter-based
// generation also gives O(1) skip-ahead and pure random access, pinned
// here.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "des/rng.hpp"
#include "des/simulation.hpp"

namespace {

using ncar::Seconds;
using ncar::des::RngRegistry;
using ncar::des::RngStream;
using ncar::des::Simulation;

std::vector<std::uint64_t> draw(RngStream& s, int n) {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(s.next_u64());
  return out;
}

TEST(RngStreamTest, InterleavingOtherStreamsDoesNotPerturb) {
  RngRegistry clean(42);
  const auto reference = draw(clean.stream("alpha"), 64);

  // Same seed, but interleave wildly varying draws on other streams.
  RngRegistry noisy(42);
  std::vector<std::uint64_t> got;
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < i % 7; ++j) noisy.stream("beta").next_u64();
    got.push_back(noisy.stream("alpha").next_u64());
    if (i % 3 == 0) noisy.stream("gamma").exponential(10.0);
  }
  EXPECT_EQ(got, reference);
}

TEST(RngStreamTest, CreationOrderIsIrrelevant) {
  RngRegistry ab(7);
  ab.stream("a");
  ab.stream("b");
  RngRegistry ba(7);
  ba.stream("b");
  ba.stream("a");
  EXPECT_EQ(draw(ab.stream("a"), 16), draw(ba.stream("a"), 16));
  EXPECT_EQ(draw(ab.stream("b"), 16), draw(ba.stream("b"), 16));
}

TEST(RngStreamTest, KeyIsPureFunctionOfSeedAndName) {
  EXPECT_EQ(RngRegistry::derive_key(1, "x"), RngRegistry::derive_key(1, "x"));
  EXPECT_NE(RngRegistry::derive_key(1, "x"), RngRegistry::derive_key(2, "x"));
  EXPECT_NE(RngRegistry::derive_key(1, "x"), RngRegistry::derive_key(1, "y"));
}

TEST(RngStreamTest, SkipAheadMatchesSequentialDraws) {
  RngRegistry reg(99);
  RngStream a = reg.stream("s");  // copy: independent counter
  RngStream b = reg.stream("s");
  for (int i = 0; i < 1000; ++i) a.next_u64();
  b.skip(1000);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStreamTest, AtIsPureRandomAccess) {
  RngRegistry reg(5);
  RngStream& s = reg.stream("s");
  const std::uint64_t v7 = s.at(7);
  draw(s, 20);
  EXPECT_EQ(s.at(7), v7);  // unaffected by advancing
  RngStream fresh("s", RngRegistry::derive_key(5, "s"));
  EXPECT_EQ(fresh.at(7), v7);
}

TEST(RngStreamTest, DistributionsConsumeFixedDrawCounts) {
  RngRegistry reg(11);
  RngStream& s = reg.stream("s");
  std::uint64_t before = s.draws();
  s.exponential(10.0);
  EXPECT_EQ(s.draws(), before + 1);
  before = s.draws();
  s.bounded_pareto(1.5, 2.0, 100.0);
  EXPECT_EQ(s.draws(), before + 1);
  before = s.draws();
  s.poisson(4.0);
  EXPECT_EQ(s.draws(), before + 1);
  before = s.draws();
  const double w[3] = {1.0, 2.0, 3.0};
  s.weighted_choice(w, 3);
  EXPECT_EQ(s.draws(), before + 1);
  before = s.draws();
  s.next_below(17);
  EXPECT_EQ(s.draws(), before + 1);
}

TEST(RngStreamTest, DistributionSanity) {
  RngRegistry reg(123);
  RngStream& s = reg.stream("s");
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = s.exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, 5.0, 0.2);

  for (int i = 0; i < 5000; ++i) {
    const double x = s.bounded_pareto(1.5, 2.0, 50.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 50.0);
    EXPECT_LT(s.next_below(17), 17u);
    EXPECT_GE(s.next_double(), 0.0);
    EXPECT_LT(s.next_double(), 1.0);
    EXPECT_GT(s.next_double_nonzero(), 0.0);
    EXPECT_LE(s.next_double_nonzero(), 1.0);
  }

  // Zero-weight entries are never chosen.
  const double w[3] = {1.0, 0.0, 3.0};
  for (int i = 0; i < 2000; ++i) EXPECT_NE(s.weighted_choice(w, 3), 1u);
}

// The event-execution-order guarantee end to end: two simulations whose
// handlers fire in different orders (one schedules extra events that draw
// from their own stream) must see identical "payload" stream draws.
TEST(RngStreamTest, EventExecutionOrderDoesNotPerturbStreams) {
  auto run = [](bool with_noise) {
    Simulation sim(2026);
    std::vector<std::uint64_t> payload;
    for (int i = 0; i < 32; ++i) {
      sim.at(Seconds(static_cast<double>(i)), [&sim, &payload] {
        payload.push_back(sim.rng("payload").next_u64());
      });
      if (with_noise) {
        sim.at(Seconds(static_cast<double>(i) + 0.5), [&sim] {
          sim.rng("noise").exponential(1.0);
          sim.rng("noise2").next_u64();
        });
      }
    }
    sim.run();
    return payload;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(RngStreamTest, Preconditions) {
  RngRegistry reg(1);
  RngStream& s = reg.stream("s");
  EXPECT_THROW(s.next_below(0), ncar::precondition_error);
  EXPECT_THROW(s.exponential(-1.0), ncar::precondition_error);
  EXPECT_THROW(s.bounded_pareto(1.5, 10.0, 5.0), ncar::precondition_error);
  const double w[1] = {0.0};
  EXPECT_THROW(s.weighted_choice(w, 1), ncar::precondition_error);
  EXPECT_THROW(s.weighted_choice(nullptr, 0), ncar::precondition_error);
}

}  // namespace
