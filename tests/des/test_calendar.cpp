// Property tests for the DES event calendar (ISSUE 6 satellite): random
// schedule/cancel/reschedule batteries must pop in nondecreasing
// (time, priority, fifo) order with FIFO tie-break, the heap invariant and
// id map must hold after every single operation, and memory must stay
// bounded by the live event count (true removal, no tombstones). All
// randomness is seeded std::mt19937_64 — never wall clock.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "des/calendar.hpp"

namespace {

using ncar::Seconds;
using ncar::des::Calendar;
using ncar::des::Event;
using ncar::des::EventId;
using ncar::des::EventKey;

bool key_le(const EventKey& a, const EventKey& b) { return !(b < a); }

TEST(CalendarTest, PopsInTimeOrder) {
  Calendar cal;
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> time(0.0, 1000.0);
  for (int i = 0; i < 500; ++i) cal.schedule(Seconds(time(rng)), [] {});
  double prev = -1.0;
  while (!cal.empty()) {
    const Event ev = cal.pop();
    EXPECT_GE(ev.key.time.value(), prev);
    prev = ev.key.time.value();
  }
}

TEST(CalendarTest, SameTimePopsFifo) {
  Calendar cal;
  // All at the same instant, same priority: strict submission order.
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    cal.schedule(Seconds(5.0), [i, &order] { order.push_back(i); });
  }
  while (!cal.empty()) cal.pop().fn();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(CalendarTest, LowerPriorityValuePopsFirstAtSameTime) {
  Calendar cal;
  std::vector<int> order;
  cal.schedule(Seconds(1.0), 5, [&] { order.push_back(5); });
  cal.schedule(Seconds(1.0), -3, [&] { order.push_back(-3); });
  cal.schedule(Seconds(1.0), 0, [&] { order.push_back(0); });
  while (!cal.empty()) cal.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{-3, 0, 5}));
}

TEST(CalendarTest, CancelIsTrueRemoval) {
  Calendar cal;
  const EventId a = cal.schedule(Seconds(1.0), [] {});
  const EventId b = cal.schedule(Seconds(2.0), [] {});
  EXPECT_EQ(cal.size(), 2u);
  EXPECT_TRUE(cal.cancel(a));
  EXPECT_EQ(cal.size(), 1u);           // no tombstone left behind
  EXPECT_FALSE(cal.cancel(a));         // stale handle
  EXPECT_FALSE(cal.pending(a));
  EXPECT_TRUE(cal.pending(b));
  EXPECT_EQ(cal.pop().id.id, b.id);
  EXPECT_FALSE(cal.cancel(b));         // already popped
}

TEST(CalendarTest, RescheduleMovesAndTakesFreshFifoPosition) {
  Calendar cal;
  std::vector<char> order;
  const EventId a = cal.schedule(Seconds(1.0), [&] { order.push_back('a'); });
  cal.schedule(Seconds(1.0), [&] { order.push_back('b'); });
  // Rescheduling a to the same time must put it *behind* b — identical
  // ordering to cancel + schedule.
  EXPECT_TRUE(cal.reschedule(a, Seconds(1.0)));
  while (!cal.empty()) cal.pop().fn();
  EXPECT_EQ(order, (std::vector<char>{'b', 'a'}));
}

TEST(CalendarTest, RescheduleStaleHandleFails) {
  Calendar cal;
  const EventId a = cal.schedule(Seconds(1.0), [] {});
  EXPECT_TRUE(cal.cancel(a));
  EXPECT_FALSE(cal.reschedule(a, Seconds(2.0)));
}

// The battery: 5000 random schedule/cancel/reschedule/pop operations;
// validate() (heap order on every edge + id-map consistency) must hold
// after every op, and the drain at the end must come out in key order
// with exactly the surviving events.
TEST(CalendarTest, RandomOperationBatteryKeepsInvariants) {
  Calendar cal;
  std::mt19937_64 rng(0xDE5C0DE);
  std::uniform_real_distribution<double> time(0.0, 100.0);
  std::uniform_int_distribution<int> prio(-2, 2);
  std::uniform_int_distribution<int> op(0, 99);
  std::vector<EventId> live;
  std::size_t popped = 0, scheduled = 0;

  for (int step = 0; step < 5000; ++step) {
    const int o = op(rng);
    if (o < 50 || live.empty()) {
      live.push_back(cal.schedule(Seconds(time(rng)), prio(rng), [] {}));
      ++scheduled;
    } else if (o < 70) {
      const std::size_t i = rng() % live.size();
      EXPECT_TRUE(cal.cancel(live[i]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (o < 85) {
      const std::size_t i = rng() % live.size();
      EXPECT_TRUE(cal.reschedule(live[i], Seconds(time(rng))));
    } else if (!cal.empty()) {
      const Event ev = cal.pop();
      ++popped;
      const auto it = std::find_if(
          live.begin(), live.end(),
          [&](const EventId& id) { return id.id == ev.id.id; });
      ASSERT_NE(it, live.end());
      live.erase(it);
    }
    ASSERT_TRUE(cal.validate()) << "after step " << step;
    ASSERT_EQ(cal.size(), live.size());
  }

  // Drain: nondecreasing full keys, exactly the live set, invariant held
  // after every pop.
  EventKey prev{Seconds(-1.0), 0, 0};
  while (!cal.empty()) {
    const Event ev = cal.pop();
    ++popped;
    EXPECT_TRUE(key_le(prev, ev.key));
    prev = ev.key;
    ASSERT_TRUE(cal.validate());
  }
  EXPECT_EQ(cal.scheduled(), scheduled);
  EXPECT_EQ(cal.popped(), popped);
  EXPECT_EQ(cal.scheduled(), cal.popped() + cal.cancelled());
}

// Memory boundedness: a churn loop (schedule + cancel) must never grow
// the container — the year-scale guarantee that cancelled events do not
// accumulate as tombstones.
TEST(CalendarTest, ChurnDoesNotAccumulate) {
  Calendar cal;
  cal.schedule(Seconds(50.0), [] {});
  for (int i = 0; i < 100000; ++i) {
    const EventId id =
        cal.schedule(Seconds(static_cast<double>(i % 100)), [] {});
    EXPECT_TRUE(cal.cancel(id));
    EXPECT_EQ(cal.size(), 1u);
  }
  EXPECT_EQ(cal.cancelled(), 100000u);
}

TEST(CalendarTest, PopOnEmptyThrows) {
  Calendar cal;
  EXPECT_THROW(cal.pop(), ncar::precondition_error);
  EXPECT_THROW(cal.next_key(), ncar::precondition_error);
}

}  // namespace
