// NodeLp tests: the prodload node as a logical process — FIFO admission,
// contention slowdown, streaming arrivals between completion events, and
// the queue complex running an open system on top of it.

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "des/simulation.hpp"
#include "prodload/node_lp.hpp"
#include "prodload/queue_complex.hpp"

namespace {

using ncar::Seconds;
using ncar::des::Simulation;
using ncar::prodload::NodeLp;
using ncar::prodload::NqsJob;
using ncar::prodload::QueueComplexLp;

TEST(NodeLpTest, SingleComponentRunsAtQuietSpeed) {
  Simulation sim;
  NodeLp node(sim, 4, 0.1);
  double done_at = -1;
  node.submit(2, Seconds(10.0), [&] { done_at = sim.now().value(); });
  sim.run();
  // One component: factor = 1 + 0.1 * max(0, 2-1)... contention counts
  // CPUs, not components: used=2 -> factor 1.1, so 10 quiet seconds take
  // 11 wall seconds.
  EXPECT_DOUBLE_EQ(done_at, 10.0 * 1.1);
  EXPECT_TRUE(node.idle());
  EXPECT_DOUBLE_EQ(node.busy_cpu_seconds(), 2 * 10.0 * 1.1);
}

TEST(NodeLpTest, NoContentionWithOneCpu) {
  Simulation sim;
  NodeLp node(sim, 4, 0.5);
  double done_at = -1;
  node.submit(1, Seconds(10.0), [&] { done_at = sim.now().value(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);  // used-1 == 0: factor exactly 1
}

TEST(NodeLpTest, StrictFifoBlocksBehindWideComponent) {
  Simulation sim;
  NodeLp node(sim, 4, 0.0);
  std::vector<int> done;
  node.submit(3, Seconds(10.0), [&] { done.push_back(0); });
  node.submit(4, Seconds(1.0), [&] { done.push_back(1); });   // must wait
  node.submit(1, Seconds(1.0), [&] { done.push_back(2); });   // behind #1
  EXPECT_EQ(node.running_count(), 1u);
  EXPECT_EQ(node.waiting_count(), 2u);  // the 1-CPU job may NOT jump ahead
  sim.run();
  EXPECT_EQ(done, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now().value(), 12.0);
}

TEST(NodeLpTest, StreamingArrivalMidFlight) {
  // With zero contention the fluid model is plain time remaining; an
  // arrival at t=4 joins a job started at t=0 and both finish exactly
  // when their remaining time elapses.
  Simulation sim;
  NodeLp node(sim, 4, 0.0);
  std::vector<double> done;
  node.submit(1, Seconds(10.0), [&] { done.push_back(sim.now().value()); });
  sim.at(Seconds(4.0), [&] {
    node.submit(1, Seconds(2.0), [&] { done.push_back(sim.now().value()); });
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 6.0);  // the short job, at 4 + 2
  EXPECT_DOUBLE_EQ(done[1], 10.0);
}

TEST(NodeLpTest, ArrivalChangesContentionFactor) {
  // Job A (1 CPU) alone runs at factor 1. When B (1 CPU) arrives at t=5,
  // both run at factor 1 + c: A's remaining 5s stretch to 5(1+c).
  const double c = 0.2;
  Simulation sim;
  NodeLp node(sim, 4, c);
  std::vector<double> done;
  node.submit(1, Seconds(10.0), [&] { done.push_back(sim.now().value()); });
  sim.at(Seconds(5.0), [&] {
    node.submit(1, Seconds(20.0), [&] { done.push_back(sim.now().value()); });
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  const double a_done = 5.0 + 5.0 * (1.0 + c);
  EXPECT_DOUBLE_EQ(done[0], a_done);
  // B ran (a_done - 5) wall seconds at factor 1+c, then finishes alone.
  // (NEAR, not exact: re-deriving the elapsed wall time from event times
  // rounds differently than the kernel's stored-dt replay.)
  const double b_served = (a_done - 5.0) / (1.0 + c);
  EXPECT_NEAR(done[1], a_done + (20.0 - b_served), 1e-9);
}

TEST(NodeLpTest, RejectsImpossibleComponents) {
  Simulation sim;
  NodeLp node(sim, 4, 0.0);
  EXPECT_THROW(node.submit(5, Seconds(1.0), {}), ncar::precondition_error);
  EXPECT_THROW(node.submit(0, Seconds(1.0), {}), ncar::precondition_error);
  EXPECT_THROW(node.submit(1, Seconds(0.0), {}), ncar::precondition_error);
}

TEST(QueueComplexTest, RunLimitCapsConcurrency) {
  Simulation sim;
  NodeLp node(sim, 32, 0.0);
  QueueComplexLp nqs(sim, node, {{"q", 32, 2}});
  int completed = 0;
  nqs.set_completion(
      [&](const NqsJob&, Seconds, Seconds, Seconds) { ++completed; });
  for (int i = 0; i < 6; ++i) {
    nqs.submit("q", {"job", 1, Seconds(10.0), 0, 0});
  }
  // run_limit 2: only two dispatched, four queued — even though the node
  // has 30 free CPUs.
  EXPECT_EQ(nqs.in_service(0), 2);
  EXPECT_EQ(nqs.backlog(0), 4);
  sim.run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(sim.now().value(), 30.0);  // three serial waves of two
  EXPECT_TRUE(nqs.idle());
}

TEST(QueueComplexTest, PriorityDispatchWithFifoTieBreak) {
  Simulation sim;
  NodeLp node(sim, 1, 0.0);
  QueueComplexLp nqs(sim, node, {{"q", 1, 1}});
  std::vector<std::uint64_t> order;
  nqs.set_completion([&](const NqsJob& j, Seconds, Seconds, Seconds) {
    order.push_back(j.tag);
  });
  nqs.submit("q", {"low1", 1, Seconds(1.0), 0, 1});   // dispatches at once
  nqs.submit("q", {"low2", 1, Seconds(1.0), 0, 2});
  nqs.submit("q", {"high", 1, Seconds(1.0), 5, 3});
  nqs.submit("q", {"low3", 1, Seconds(1.0), 0, 4});
  sim.run();
  // 1 ran immediately; then the high-priority 3; then 2 and 4 FIFO.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 2, 4}));
}

TEST(QueueComplexTest, WaitAndResponseAccounting) {
  Simulation sim;
  NodeLp node(sim, 1, 0.0);
  QueueComplexLp nqs(sim, node, {{"q", 1, 1}});
  nqs.submit("q", {"a", 1, Seconds(4.0), 0, 0});
  nqs.submit("q", {"b", 1, Seconds(4.0), 0, 0});  // waits 4s
  sim.run();
  EXPECT_EQ(nqs.jobs_completed(), 2u);
  EXPECT_DOUBLE_EQ(nqs.total_wait_s(), 4.0);
  EXPECT_DOUBLE_EQ(nqs.total_response_s(), 4.0 + 8.0);
  EXPECT_EQ(nqs.max_backlog(), 1u);
}

TEST(QueueComplexTest, RejectsOverCeilingJobs) {
  Simulation sim;
  NodeLp node(sim, 32, 0.0);
  QueueComplexLp nqs(sim, node, {{"q", 4, 1}});
  EXPECT_THROW(nqs.submit("q", {"wide", 8, Seconds(1.0), 0, 0}),
               ncar::precondition_error);
  EXPECT_THROW(nqs.submit("missing", {"x", 1, Seconds(1.0), 0, 0}),
               ncar::precondition_error);
}

}  // namespace
