// Synthetic workload generator tests: determinism across runs and across
// consumer interleaving, bounded pending-event memory, retry budgets,
// config validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "des/simulation.hpp"
#include "des/workload.hpp"

namespace {

using ncar::Seconds;
using ncar::des::Simulation;
using ncar::des::SyntheticJob;
using ncar::des::WorkloadConfig;
using ncar::des::WorkloadGenerator;

WorkloadConfig small_mix() {
  WorkloadConfig cfg;
  cfg.classes = {
      {"narrow", "q", 1, 300.0, 0.1, 1.5, 7200.0, 0},
      {"wide", "q", 8, 600.0, 0.1, 1.5, 7200.0, 0},
  };
  cfg.mean_interarrival_s = 60.0;
  return cfg;
}

using JobTuple = std::tuple<std::uint64_t, int, int, double, double>;

JobTuple key(const SyntheticJob& j) {
  return {j.id, j.job_class, j.attempt, j.arrival.value(),
          j.service.value()};
}

TEST(WorkloadTest, RepeatRunsAreByteIdentical) {
  auto run = [] {
    Simulation sim(7);
    std::vector<JobTuple> jobs;
    WorkloadGenerator gen(sim, small_mix(),
                          [&](const SyntheticJob& j) { jobs.push_back(key(j)); });
    gen.start(Seconds(86400.0));
    sim.run();
    return jobs;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(WorkloadTest, ConsumerDrawsDoNotPerturbTheJobSequence) {
  auto run = [](bool consumer_noise) {
    Simulation sim(7);
    std::vector<JobTuple> jobs;
    WorkloadGenerator gen(sim, small_mix(), [&](const SyntheticJob& j) {
      jobs.push_back(key(j));
      if (consumer_noise) {
        // A consumer with its own streams and its own events.
        sim.rng("consumer").exponential(3.0);
        sim.in(Seconds(sim.rng("consumer").exponential(30.0)),
               [&sim] { sim.rng("consumer2").next_u64(); });
      }
    });
    gen.start(Seconds(86400.0));
    sim.run();
    return jobs;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    Simulation sim(seed);
    std::vector<JobTuple> jobs;
    WorkloadGenerator gen(sim, small_mix(),
                          [&](const SyntheticJob& j) { jobs.push_back(key(j)); });
    gen.start(Seconds(86400.0));
    sim.run();
    return jobs;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(WorkloadTest, PendingEventsStayBounded) {
  // One arrival in flight at a time plus the two phase processes: the
  // calendar never grows with the horizon — the bounded-memory half of
  // the year-bench guarantee.
  Simulation sim(3);
  std::size_t peak = 0;
  WorkloadGenerator gen(sim, small_mix(), [&](const SyntheticJob&) {
    peak = std::max(peak, sim.calendar().size());
  });
  gen.start(Seconds(30.0 * 86400));
  sim.run();
  EXPECT_GT(gen.jobs_emitted(), 10000u);
  EXPECT_LE(peak, 4u);
}

TEST(WorkloadTest, RetryBudgetIsHonoured) {
  WorkloadConfig cfg = small_mix();
  cfg.max_retries = 2;
  Simulation sim(5);
  std::vector<SyntheticJob> completed;
  WorkloadGenerator* genp = nullptr;
  WorkloadGenerator gen(sim, cfg, [&](const SyntheticJob& j) {
    // Every job "fails" instantly: retry until the budget is spent.
    completed.push_back(j);
    genp->report_failure(j);
  });
  genp = &gen;
  gen.start(Seconds(3600.0));
  sim.run();
  ASSERT_FALSE(completed.empty());
  // Attempts only reach 0, 1, 2; each id appears at most 3 times.
  for (const auto& j : completed) EXPECT_LE(j.attempt, 2);
  EXPECT_EQ(gen.retries_emitted(), 2 * gen.jobs_emitted());
  EXPECT_EQ(gen.retries_abandoned(), gen.jobs_emitted());
}

TEST(WorkloadTest, RetryKeepsClassAndService) {
  WorkloadConfig cfg = small_mix();
  cfg.max_retries = 1;
  Simulation sim(9);
  std::vector<SyntheticJob> seen;
  WorkloadGenerator* genp = nullptr;
  WorkloadGenerator gen(sim, cfg, [&](const SyntheticJob& j) {
    seen.push_back(j);
    if (j.attempt == 0) genp->report_failure(j);
  });
  genp = &gen;
  gen.start(Seconds(7200.0));
  sim.run();
  for (const auto& j : seen) {
    if (j.attempt == 0) continue;
    const auto orig = std::find_if(
        seen.begin(), seen.end(), [&](const SyntheticJob& o) {
          return o.id == j.id && o.attempt == 0;
        });
    ASSERT_NE(orig, seen.end());
    EXPECT_EQ(orig->job_class, j.job_class);
    EXPECT_EQ(orig->service.value(), j.service.value());
    EXPECT_GT(j.arrival.value(), orig->arrival.value());
  }
}

TEST(WorkloadTest, StormElevatesFailureProbability) {
  WorkloadConfig cfg = small_mix();
  cfg.failure_prob = 0.0;
  cfg.storm_failure_prob = 1.0;
  cfg.mean_storm_gap_s = 3600.0;  // storms common enough to observe
  cfg.mean_storm_s = 3600.0;
  Simulation sim(13);
  WorkloadGenerator gen(sim, cfg, [](const SyntheticJob&) {});
  std::uint64_t calm_failures = 0, storm_failures = 0, storm_draws = 0;
  // Sample the failure draw on a fixed cadence and bucket by phase.
  std::function<void()> sample = [&] {
    if (gen.in_storm()) {
      ++storm_draws;
      if (gen.draw_failure()) ++storm_failures;
    } else if (gen.draw_failure()) {
      ++calm_failures;
    }
    if (sim.now() < Seconds(30.0 * 86400)) sim.in(Seconds(600.0), sample);
  };
  gen.start(Seconds(31.0 * 86400));
  sim.in(Seconds(0.0), sample);
  sim.run();
  EXPECT_GT(gen.storms(), 0u);
  EXPECT_GT(storm_draws, 0u);
  EXPECT_EQ(calm_failures, 0u);
  EXPECT_EQ(storm_failures, storm_draws);
}

TEST(WorkloadTest, ValidationRejectsNonsense) {
  Simulation sim;
  auto sink = [](const SyntheticJob&) {};
  {
    WorkloadConfig cfg;  // no classes
    EXPECT_THROW(WorkloadGenerator(sim, cfg, sink), ncar::precondition_error);
  }
  {
    WorkloadConfig cfg = small_mix();
    cfg.transition = {{1.0}};  // wrong shape
    EXPECT_THROW(WorkloadGenerator(sim, cfg, sink), ncar::precondition_error);
  }
  {
    WorkloadConfig cfg = small_mix();
    cfg.transition = {{0.0, 0.0}, {1.0, 1.0}};  // zero row
    EXPECT_THROW(WorkloadGenerator(sim, cfg, sink), ncar::precondition_error);
  }
  {
    WorkloadConfig cfg = small_mix();
    cfg.classes[0].tail_cap_s = 1.0;  // cap below the mean
    EXPECT_THROW(WorkloadGenerator(sim, cfg, sink), ncar::precondition_error);
  }
  {
    WorkloadConfig cfg = small_mix();
    EXPECT_THROW(WorkloadGenerator(sim, cfg, nullptr),
                 ncar::precondition_error);
  }
}

}  // namespace
