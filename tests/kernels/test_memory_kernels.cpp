#include "kernels/memory_kernels.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

namespace {

using namespace ncar;
using kernels::MemKernel;

class MemKernelTest : public ::testing::Test {
protected:
  MemKernelTest() : node(single_cpu()), cpu(node.cpu(0)) {}
  static sxs::MachineConfig single_cpu() {
    auto c = sxs::MachineConfig::sx4_benchmarked();
    c.cpus_per_node = 1;
    return c;
  }
  sxs::Node node;
  sxs::Cpu& cpu;
};

TEST_F(MemKernelTest, CopyVerifiesNumerics) {
  const auto p = kernels::run_copy(cpu, 1000, 100, 5);
  EXPECT_TRUE(p.verified);
  EXPECT_GT(p.mb_per_s, 0.0);
}

TEST_F(MemKernelTest, CopyLongVectorsNearPortLimit) {
  const auto p = kernels::run_copy(cpu, 1'000'000, 1, 5);
  // One-way payload at the 9.2 ns port: 8 words/cycle = ~6.96 GB/s.
  EXPECT_GT(p.mb_per_s, 6000.0);
  EXPECT_LT(p.mb_per_s, 7000.0);
}

TEST_F(MemKernelTest, CopyShortVectorsStartupBound) {
  const auto p = kernels::run_copy(cpu, 1, 1'000'000, 5);
  EXPECT_LT(p.mb_per_s, 100.0);
}

TEST_F(MemKernelTest, IaVerifiesGatherNumerics) {
  const auto p = kernels::run_ia(cpu, 1000, 100, 5);
  EXPECT_TRUE(p.verified);
}

TEST_F(MemKernelTest, IaSlowerThanCopyAtLongVectors) {
  const auto c = kernels::run_copy(cpu, 100'000, 10, 5);
  const auto g = kernels::run_ia(cpu, 100'000, 10, 5);
  EXPECT_GT(c.mb_per_s, 2.0 * g.mb_per_s);
}

TEST_F(MemKernelTest, XposeVerifiesTransposeNumerics) {
  const auto p = kernels::run_xpose(cpu, 64, 4, 5);
  EXPECT_TRUE(p.verified);
}

TEST_F(MemKernelTest, XposeSlowerThanCopy) {
  const auto c = kernels::run_copy(cpu, 250'000, 4, 5);
  const auto x = kernels::run_xpose(cpu, 500, 4, 5);
  EXPECT_GT(c.mb_per_s, 1.3 * x.mb_per_s);
}

TEST_F(MemKernelTest, XposePowerOfTwoDimensionConflicts) {
  // N=512 folds the stride onto few banks; N=500 does not.
  const auto bad = kernels::run_xpose(cpu, 512, 4, 5);
  const auto good = kernels::run_xpose(cpu, 500, 4, 5);
  EXPECT_GT(good.mb_per_s, 1.5 * bad.mb_per_s);
}

TEST_F(MemKernelTest, BandwidthIsOneWayPayload) {
  const auto p = kernels::run_copy(cpu, 100'000, 1, 1);
  const double bytes = 8.0 * 100'000;
  EXPECT_NEAR(p.mb_per_s, bytes / p.seconds / 1e6, 1e-6);
}

TEST_F(MemKernelTest, InvalidArgumentsThrow) {
  EXPECT_THROW(kernels::run_copy(cpu, 0, 1, 5), ncar::precondition_error);
  EXPECT_THROW(kernels::run_copy(cpu, 1, 1, 0), ncar::precondition_error);
  EXPECT_THROW(kernels::run_xpose(cpu, 1, 1, 5), ncar::precondition_error);
}

TEST(Schedule, ConstantWorkKeepsProductRoughlyConstant) {
  const auto sched = kernels::constant_work_schedule(1'000'000);
  ASSERT_GE(sched.size(), 15u);
  EXPECT_EQ(sched.front().first, 1);
  EXPECT_EQ(sched.back().first, 1'000'000);
  for (auto [n, m] : sched) {
    const double work = static_cast<double>(n) * static_cast<double>(m);
    EXPECT_GE(work, 0.4e6);
    EXPECT_LE(work, 1.6e6);
  }
}

TEST(Schedule, XposeRangeMatchesPaper) {
  const auto sched = kernels::xpose_schedule(1'000'000);
  EXPECT_EQ(sched.front().first, 2);     // N from 2
  EXPECT_LE(sched.back().first, 1000);   // to 10^3
  // M from 250,000 down to 1 (paper section 4.2.3).
  EXPECT_EQ(sched.front().second, 250'000);
  EXPECT_EQ(sched.back().second, 1);
}

TEST(Schedule, StrictlyIncreasingN) {
  for (auto sched : {kernels::constant_work_schedule(100'000),
                     kernels::xpose_schedule(100'000)}) {
    for (std::size_t i = 1; i < sched.size(); ++i) {
      EXPECT_GT(sched[i].first, sched[i - 1].first);
    }
  }
}

class SweepParam : public ::testing::TestWithParam<MemKernel> {};

TEST_P(SweepParam, AllPointsVerifiedAndMonotoneAtHighN) {
  auto cfg = sxs::MachineConfig::sx4_benchmarked();
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  const auto pts = kernels::sweep(GetParam(), node.cpu(0), 100'000, 3);
  ASSERT_GE(pts.size(), 10u);
  for (const auto& p : pts) {
    EXPECT_TRUE(p.verified) << "N=" << p.n;
    EXPECT_GT(p.mb_per_s, 0.0);
  }
  // Bandwidth at the longest vectors beats the shortest (startup).
  EXPECT_GT(pts.back().mb_per_s, pts.front().mb_per_s);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SweepParam,
                         ::testing::Values(MemKernel::Copy,
                                           MemKernel::IndirectAddress,
                                           MemKernel::Transpose));

}  // namespace
