// Negative-compilation probe: adding cycles to seconds must be a build
// error. CTest builds this target expecting failure (WILL_FAIL); if it ever
// compiles, the dimension system has sprung a leak.
#include "common/quantity.hpp"

int main() {
  const ncar::Cycles c(100.0);
  const ncar::Seconds s(1.0);
  const auto mixed = c + s;  // must not compile
  return static_cast<int>(mixed.value());
}
