#include "hint/hint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "machines/comparator.hpp"

namespace {

using namespace ncar;
using machines::Comparator;

TEST(Hint, AnalyticAreaIsTwoLnTwoMinusOne) {
  EXPECT_NEAR(hint::analytic_area(), 2.0 * std::log(2.0) - 1.0, 1e-15);
  EXPECT_NEAR(hint::analytic_area(), 0.3862943611, 1e-9);
}

TEST(Hint, BoundsBracketTheAnalyticArea) {
  Comparator m(Comparator::sun_sparc20());
  const auto r = hint::run_hint(m, 10'000);
  EXPECT_LE(r.lower, hint::analytic_area());
  EXPECT_GE(r.upper, hint::analytic_area());
  EXPECT_TRUE(r.verified);
}

TEST(Hint, QualityGrowsWithSplits) {
  Comparator m(Comparator::sun_sparc20());
  const auto a = hint::run_hint(m, 1'000);
  const auto b = hint::run_hint(m, 10'000);
  EXPECT_GT(b.quality, 5.0 * a.quality);
}

TEST(Hint, QualityScalesRoughlyLinearly) {
  // Greedy bisection of a monotone function: gap ~ 1/n, quality ~ n.
  Comparator m(Comparator::sun_sparc20());
  const auto a = hint::run_hint(m, 20'000);
  const auto b = hint::run_hint(m, 40'000);
  const double ratio = b.quality / a.quality;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(Hint, MquipsRanksWorkstationsAboveJ90) {
  // Table 1's inversion, from the HINT side.
  Comparator sparc(Comparator::sun_sparc20());
  Comparator rs6k(Comparator::ibm_rs6000_590());
  Comparator j90(Comparator::cray_j90());
  const auto a = hint::run_hint(sparc, 50'000);
  const auto b = hint::run_hint(rs6k, 50'000);
  const auto c = hint::run_hint(j90, 50'000);
  EXPECT_GT(a.mquips, c.mquips);
  EXPECT_GT(b.mquips, c.mquips);
}

TEST(Hint, DeterministicAcrossRuns) {
  Comparator m(Comparator::cray_ymp());
  const auto a = hint::run_hint(m, 5'000);
  const auto b = hint::run_hint(m, 5'000);
  EXPECT_DOUBLE_EQ(a.quality, b.quality);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Hint, ZeroSplitsThrows) {
  Comparator m(Comparator::cray_ymp());
  EXPECT_THROW(hint::run_hint(m, 0), ncar::precondition_error);
}

}  // namespace
