#include "radabs/radabs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "machines/comparator.hpp"

namespace {

using namespace ncar;
using machines::Comparator;

TEST(RadabsAtmosphere, ProfilesArePhysical) {
  const auto f = radabs::make_test_atmosphere(64, 18);
  EXPECT_EQ(f.ncol, 64);
  EXPECT_EQ(f.nlev, 18);
  // Pressure increases monotonically toward the surface.
  for (int k = 1; k < f.nlev; ++k) {
    EXPECT_GT(f.pressure[static_cast<std::size_t>(k)],
              f.pressure[static_cast<std::size_t>(k - 1)]);
  }
  EXPECT_LE(f.pressure.back(), 1.01e5);
  for (double t : f.temp) {
    EXPECT_GT(t, 180.0);
    EXPECT_LT(t, 330.0);
  }
  for (double q : f.qh2o) {
    EXPECT_GE(q, 0.0);
    EXPECT_LT(q, 0.05);
  }
}

TEST(RadabsAtmosphere, DeterministicForSeed) {
  const auto a = radabs::make_test_atmosphere(8, 10, 5);
  const auto b = radabs::make_test_atmosphere(8, 10, 5);
  EXPECT_EQ(a.temp, b.temp);
  EXPECT_EQ(a.qh2o, b.qh2o);
}

TEST(RadabsAtmosphere, InvalidShapesThrow) {
  EXPECT_THROW(radabs::make_test_atmosphere(0, 18), ncar::precondition_error);
  EXPECT_THROW(radabs::make_test_atmosphere(8, 1), ncar::precondition_error);
}

TEST(Radabs, ChecksumIsFiniteAndReproducible) {
  Comparator m(Comparator::nec_sx4_single());
  const auto f = radabs::make_test_atmosphere(32, 10);
  const auto a = radabs::run_radabs(m, f);
  const auto b = radabs::run_radabs(m, f);
  EXPECT_TRUE(std::isfinite(a.checksum));
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.level_pairs, 45);  // 10 choose 2
}

TEST(Radabs, AbsorptivitiesBounded) {
  // a1 in (0,1), a2 small positive: per-pair-column mean below ~1.1.
  Comparator m(Comparator::nec_sx4_single());
  const auto f = radabs::make_test_atmosphere(32, 10);
  const auto r = radabs::run_radabs(m, f);
  const double mean = r.checksum / (32.0 * 45.0);
  EXPECT_GT(mean, 0.0);
  EXPECT_LT(mean, 1.2);
}

TEST(Radabs, Sx4ReproducesPaperFigure) {
  // Paper section 4.4: 865.9 Cray Y-MP equivalent Mflops on the SX-4/1.
  Comparator m(Comparator::nec_sx4_single());
  const auto r = radabs::run_radabs_standard(m);
  EXPECT_GT(r.equiv_mflops, 0.75 * 865.9);
  EXPECT_LT(r.equiv_mflops, 1.25 * 865.9);
}

TEST(Radabs, HardwareFlopsExceedEquivalentFlops) {
  // The pipes execute more flops than Cray library counting credits.
  Comparator m(Comparator::nec_sx4_single());
  const auto r = radabs::run_radabs_standard(m);
  EXPECT_GT(r.hw_mflops, r.equiv_mflops);
}

TEST(Radabs, VectorMachinesOutperformScalarMachinesTenfold) {
  Comparator sx4(Comparator::nec_sx4_single());
  Comparator sparc(Comparator::sun_sparc20());
  const auto a = radabs::run_radabs_standard(sx4);
  const auto b = radabs::run_radabs_standard(sparc);
  EXPECT_GT(a.equiv_mflops, 10.0 * b.equiv_mflops);
  // Same numerics on both machines.
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(Radabs, YmpMatchesTable1) {
  Comparator ymp(Comparator::cray_ymp());
  const auto r = radabs::run_radabs_standard(ymp);
  EXPECT_GT(r.equiv_mflops, 0.75 * 178.1);
  EXPECT_LT(r.equiv_mflops, 1.25 * 178.1);
}

TEST(Radabs, PairCountQuadraticInLevels) {
  Comparator m(Comparator::nec_sx4_single());
  const auto f18 = radabs::make_test_atmosphere(8, 18);
  const auto r = radabs::run_radabs(m, f18);
  EXPECT_EQ(r.level_pairs, 18 * 17 / 2);
}

}  // namespace
