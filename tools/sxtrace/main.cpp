// sxtrace — offline toolbox for .sxt binary streaming traces.
//
//   sxtrace convert <in.sxt> <out.json>   .sxt -> Chrome trace_event JSON,
//                                         byte-identical to the live
//                                         SX4NCAR_TRACE=full export of the
//                                         same spans (drops permitting)
//   sxtrace stats <in.sxt>                events, bytes, bytes/event, the
//                                         compression ratio against the
//                                         equivalent Chrome JSON, drops
//
// Exit code 0 on success; 1 with a one-line "sxtrace: ..." diagnostic on
// usage errors, unreadable/corrupt input (the reader's exact "sxt: ..."
// message is passed through), or output I/O failure.

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/stream/convert.hpp"
#include "trace/stream/reader.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sxtrace convert <in.sxt> <out.json>\n"
               "       sxtrace stats <in.sxt>\n");
  return 1;
}

int convert(const std::string& in_path, const std::string& out_path) {
  const ncar::trace::stream::SxtFile file =
      ncar::trace::stream::read_sxt_file(in_path);
  std::ofstream out(out_path, std::ios::binary);
  if (!out.is_open()) {
    std::fprintf(stderr, "sxtrace: cannot open %s\n", out_path.c_str());
    return 1;
  }
  ncar::trace::stream::write_chrome_json(file, out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "sxtrace: write failed: %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}

int stats(const std::string& in_path) {
  const ncar::trace::stream::SxtFile file =
      ncar::trace::stream::read_sxt_file(in_path);

  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  std::size_t tracks = 0;
  for (const ncar::trace::stream::TrackData& t : file.tracks) {
    events += t.spans.size();
    dropped += t.dropped;
    if (!(t.skip_if_empty && t.spans.empty())) ++tracks;
  }

  // The honest compression baseline: render the very JSON `convert` would
  // emit and compare sizes.
  std::ostringstream json;
  ncar::trace::stream::write_chrome_json(file, json);
  const std::uint64_t json_bytes = json.str().size();

  const double bytes = static_cast<double>(file.stats.file_bytes);
  std::printf("tracks:            %zu\n", tracks);
  std::printf("events:            %llu\n",
              static_cast<unsigned long long>(events));
  std::printf("sxt bytes:         %llu\n",
              static_cast<unsigned long long>(file.stats.file_bytes));
  std::printf("bytes/event:       %.3f\n",
              events > 0 ? bytes / static_cast<double>(events) : 0.0);
  std::printf("chrome json bytes: %llu\n",
              static_cast<unsigned long long>(json_bytes));
  std::printf("compression ratio: %.2fx\n",
              bytes > 0 ? static_cast<double>(json_bytes) / bytes : 0.0);
  std::printf("chunks:            %llu\n",
              static_cast<unsigned long long>(file.stats.total_chunks));
  std::printf("recorded (epochs): %llu\n",
              static_cast<unsigned long long>(file.stats.total_records));
  std::printf("dropped spans:     %llu\n",
              static_cast<unsigned long long>(dropped));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "convert") {
      if (argc != 4) return usage();
      return convert(argv[2], argv[3]);
    }
    if (cmd == "stats") {
      if (argc != 3) return usage();
      return stats(argv[2]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sxtrace: %s\n", e.what());
    return 1;
  }
  return usage();
}
