/* Minimal stand-in for <clang-c/CXCompilationDatabase.h>; see Index.h in
 * this directory for why it exists. Declarations only, never linked. */
#ifndef SXSEMA_STUB_CLANG_C_CXCOMPILATIONDATABASE_H
#define SXSEMA_STUB_CLANG_C_CXCOMPILATIONDATABASE_H

#include "Index.h"

#ifdef __cplusplus
extern "C" {
#endif

typedef void* CXCompilationDatabase;
typedef void* CXCompileCommands;
typedef void* CXCompileCommand;

typedef enum {
  CXCompilationDatabase_NoError = 0,
  CXCompilationDatabase_CanNotLoadDatabase = 1
} CXCompilationDatabase_Error;

CXCompilationDatabase clang_CompilationDatabase_fromDirectory(
    const char* BuildDir, CXCompilationDatabase_Error* ErrorCode);
void clang_CompilationDatabase_dispose(CXCompilationDatabase database);
CXCompileCommands clang_CompilationDatabase_getAllCompileCommands(
    CXCompilationDatabase database);
void clang_CompileCommands_dispose(CXCompileCommands commands);
unsigned clang_CompileCommands_getSize(CXCompileCommands commands);
CXCompileCommand clang_CompileCommands_getCommand(CXCompileCommands commands,
                                                  unsigned i);
CXString clang_CompileCommand_getDirectory(CXCompileCommand command);
CXString clang_CompileCommand_getFilename(CXCompileCommand command);
unsigned clang_CompileCommand_getNumArgs(CXCompileCommand command);
CXString clang_CompileCommand_getArg(CXCompileCommand command, unsigned i);

#ifdef __cplusplus
}
#endif

#endif /* SXSEMA_STUB_CLANG_C_CXCOMPILATIONDATABASE_H */
