/* Minimal stand-in for <clang-c/Index.h>, declaring exactly the API
 * subset frontend_clang.cpp uses. It exists so hosts WITHOUT libclang
 * dev packages can still syntax-check the frontend (CTest target
 * sxsema_frontend_syntax compiles frontend_clang.cpp with -fsyntax-only
 * against this directory). It is never used for a real build or link:
 * when CMake finds genuine clang-c headers, those are used instead.
 *
 * Struct layouts mirror the stable libclang ABI, but nothing here is
 * ever executed — only parsed. */
#ifndef SXSEMA_STUB_CLANG_C_INDEX_H
#define SXSEMA_STUB_CLANG_C_INDEX_H

#ifdef __cplusplus
extern "C" {
#endif

typedef void* CXIndex;
typedef struct CXTranslationUnitImpl* CXTranslationUnit;
typedef void* CXFile;
typedef void* CXClientData;

typedef struct {
  const void* data;
  unsigned private_flags;
} CXString;

typedef struct {
  const void* ptr_data[2];
  unsigned int_data;
} CXSourceLocation;

typedef struct {
  const void* ptr_data[2];
  unsigned begin_int_data;
  unsigned end_int_data;
} CXSourceRange;

struct CXUnsavedFile {
  const char* Filename;
  const char* Contents;
  unsigned long Length;
};

enum CXErrorCode {
  CXError_Success = 0,
  CXError_Failure = 1,
  CXError_Crashed = 2,
  CXError_InvalidArguments = 3,
  CXError_ASTReadError = 4
};

enum CXCursorKind {
  CXCursor_UnexposedDecl = 1,
  CXCursor_StructDecl = 2,
  CXCursor_UnionDecl = 3,
  CXCursor_ClassDecl = 4,
  CXCursor_FunctionDecl = 8,
  CXCursor_VarDecl = 9,
  CXCursor_CXXMethod = 21,
  CXCursor_Namespace = 22,
  CXCursor_LinkageSpec = 23,
  CXCursor_Constructor = 24,
  CXCursor_Destructor = 25,
  CXCursor_ConversionFunction = 26,
  CXCursor_FunctionTemplate = 30,
  CXCursor_ClassTemplate = 31,
  CXCursor_ClassTemplatePartialSpecialization = 32,
  CXCursor_FirstExpr = 100,
  CXCursor_DeclRefExpr = 101,
  CXCursor_MemberRefExpr = 102,
  CXCursor_CallExpr = 103,
  CXCursor_CXXNewExpr = 134,
  CXCursor_LambdaExpr = 144,
  CXCursor_ReturnStmt = 214,
  CXCursor_CXXForRangeStmt = 225,
  CXCursor_TranslationUnit = 350
};

typedef struct {
  enum CXCursorKind kind;
  int xdata;
  const void* data[3];
} CXCursor;

enum CXTypeKind {
  CXType_Invalid = 0,
  CXType_Unexposed = 1,
  CXType_Double = 22,
  CXType_Record = 105
};

typedef struct {
  enum CXTypeKind kind;
  void* data[2];
} CXType;

enum CXChildVisitResult {
  CXChildVisit_Break,
  CXChildVisit_Continue,
  CXChildVisit_Recurse
};

enum CX_CXXAccessSpecifier {
  CX_CXXInvalidAccessSpecifier,
  CX_CXXPublic,
  CX_CXXProtected,
  CX_CXXPrivate
};

enum CXTranslationUnit_Flags { CXTranslationUnit_None = 0x0 };

typedef enum CXChildVisitResult (*CXCursorVisitor)(CXCursor cursor,
                                                   CXCursor parent,
                                                   CXClientData client_data);

CXIndex clang_createIndex(int excludeDeclarationsFromPCH,
                          int displayDiagnostics);
void clang_disposeIndex(CXIndex index);

const char* clang_getCString(CXString string);
void clang_disposeString(CXString string);

enum CXErrorCode clang_parseTranslationUnit2FullArgv(
    CXIndex CIdx, const char* source_filename,
    const char* const* command_line_args, int num_command_line_args,
    struct CXUnsavedFile* unsaved_files, unsigned num_unsaved_files,
    unsigned options, CXTranslationUnit* out_TU);
void clang_disposeTranslationUnit(CXTranslationUnit unit);
CXCursor clang_getTranslationUnitCursor(CXTranslationUnit unit);
CXString clang_getTranslationUnitSpelling(CXTranslationUnit unit);

unsigned clang_visitChildren(CXCursor parent, CXCursorVisitor visitor,
                             CXClientData client_data);

enum CXCursorKind clang_getCursorKind(CXCursor cursor);
unsigned clang_isDeclaration(enum CXCursorKind kind);
CXString clang_getCursorSpelling(CXCursor cursor);
CXType clang_getCursorType(CXCursor cursor);
CXType clang_getCanonicalType(CXType type);
CXString clang_getTypeSpelling(CXType type);
CXType clang_getCursorResultType(CXCursor cursor);
CXSourceLocation clang_getCursorLocation(CXCursor cursor);
void clang_getSpellingLocation(CXSourceLocation location, CXFile* file,
                               unsigned* line, unsigned* column,
                               unsigned* offset);
CXString clang_getFileName(CXFile file);
CXCursor clang_getCursorReferenced(CXCursor cursor);
CXCursor clang_getCursorSemanticParent(CXCursor cursor);
int clang_Cursor_isNull(CXCursor cursor);
unsigned clang_isCursorDefinition(CXCursor cursor);
enum CX_CXXAccessSpecifier clang_getCXXAccessSpecifier(CXCursor cursor);
int clang_Cursor_getNumArguments(CXCursor cursor);
CXCursor clang_Cursor_getArgument(CXCursor cursor, unsigned i);
CXSourceRange clang_getCursorExtent(CXCursor cursor);
CXSourceLocation clang_getRangeStart(CXSourceRange range);
CXSourceLocation clang_getRangeEnd(CXSourceRange range);
int clang_getNumArgTypes(CXType type);
CXType clang_getArgType(CXType type, unsigned i);
unsigned clang_equalCursors(CXCursor a, CXCursor b);

#ifdef __cplusplus
}
#endif

#endif /* SXSEMA_STUB_CLANG_C_INDEX_H */
