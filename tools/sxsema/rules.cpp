#include "rules.hpp"

#include <algorithm>
#include <array>
#include <tuple>

namespace ncar::sxsema {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// The dimensioned subsystems swept by the unit-safety family.
bool in_unit_scope(const std::string& file) {
  return starts_with(file, "src/sxs/") || starts_with(file, "src/machines/") ||
         starts_with(file, "src/iosim/") || starts_with(file, "src/des/");
}

bool in_model_scope(const std::string& file) {
  return starts_with(file, "src/");
}

/// src/sxs + src/iosim: the scope of the charge-tagging discipline
/// (mirrors sxlint's trace-category rule).
bool in_charge_scope(const std::string& file) {
  return starts_with(file, "src/sxs/") || starts_with(file, "src/iosim/");
}

bool is_raw_numeric(const std::string& type) {
  // Canonical spellings: std::uint64_t is `unsigned long` on LP64 hosts.
  return type == "double" || type == "float" || type == "unsigned long" ||
         type == "unsigned long long" || type == "std::uint64_t" ||
         type == "uint64_t";
}

bool is_clock_conversion(const Function& f) {
  return (f.name == "to_seconds" || f.name == "to_cycles") &&
         f.qualified.find("MachineConfig::") != std::string::npos;
}

bool cross_clock_dims(const std::string& a, const std::string& b) {
  return (a == "Cycles" && b == "Seconds") ||
         (a == "Seconds" && b == "Cycles");
}

Finding make(const char* rule, const SourceLoc& loc, const Function& f,
             std::string message) {
  Finding out;
  out.rule = rule;
  out.file = loc.file;
  out.line = loc.line;
  out.col = loc.col;
  out.symbol = f.qualified;
  out.message = std::move(message);
  return out;
}

const char* alloc_what(const FuncOp& op) {
  switch (op.kind) {
    case OpKind::NewExpr: return "a new-expression";
    case OpKind::StringMake: return "std::string construction";
    default: return "container growth";
  }
}

std::string alloc_detail(const FuncOp& op) {
  if (op.kind == OpKind::ContainerGrowth) {
    return "container growth (" + op.detail + " on " + op.aux + ")";
  }
  return alloc_what(op);
}

bool is_alloc_op(const FuncOp& op) {
  return op.kind == OpKind::NewExpr || op.kind == OpKind::ContainerGrowth ||
         op.kind == OpKind::StringMake;
}

constexpr std::array<const char*, 10> kHotRoots = {
    "charge_step", "charge_cycles",      "charge_seconds",
    "access_range", "access_stream",
    // Numeric time-step roots: the per-step driver loops of the model
    // kernels. These run thousands of times per sweep and since the
    // workspace/arena work must stay allocation-free end to end.
    "step", "baroclinic_step", "solve_barotropic", "advect", "combine"};

bool is_hot_root(const Function& f) {
  return std::find(kHotRoots.begin(), kHotRoots.end(), f.name) !=
         kHotRoots.end();
}

bool is_charge_call(const std::string& name) {
  return name == "charge_cycles" || name == "charge_seconds";
}

}  // namespace

std::string to_text(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ":" + std::to_string(f.col) +
         ": [" + f.rule + "] " + f.message;
}

std::string fingerprint(const Finding& f) {
  // No line/column: moving a finding within its file must not churn the
  // committed baseline. The symbol disambiguates same-message findings in
  // different functions of one file.
  return f.rule + "|" + f.file + "|" + f.symbol + "|" + f.message;
}

void sort_and_dedupe(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message, a.col) <
                     std::tie(b.file, b.line, b.rule, b.message, b.col);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
}

std::vector<Finding> check_unit_leak(const Model& m) {
  std::vector<Finding> out;
  for (const Function& f : m.functions) {
    if (!in_unit_scope(f.loc.file)) continue;
    for (const FuncOp& op : f.ops) {
      if (op.kind == OpKind::ReturnRaw && f.is_public &&
          is_raw_numeric(f.result_type)) {
        out.push_back(make(
            "sema-unit-leak", op.loc, f,
            "public function '" + f.qualified + "' returns raw " +
                f.result_type + " stripped from a ncar::Quantity<" +
                op.detail +
                "> via .value(); return the typed quantity instead"));
      }
      if (op.kind == OpKind::QuantityWrap && !op.aux.empty() &&
          cross_clock_dims(op.detail, op.aux) && !is_clock_conversion(f)) {
        out.push_back(make(
            "sema-unit-leak", op.loc, f,
            "re-wraps a " + op.aux + " value as " + op.detail +
                " outside MachineConfig::to_seconds/to_cycles; convert "
                "through the machine clock"));
      }
    }
  }
  return out;
}

std::vector<Finding> check_nondet(const Model& m) {
  std::vector<Finding> out;
  for (const Function& f : m.functions) {
    if (!in_model_scope(f.loc.file)) continue;
    for (const FuncOp& op : f.ops) {
      switch (op.kind) {
        case OpKind::BannedCall:
          out.push_back(make(
              "sema-nondet", op.loc, f,
              "call to " + op.detail +
                  " is nondeterministic; simulated time and randomness "
                  "must come from the model"));
          break;
        case OpKind::RngEngine:
          // The des RNG layer and the repo's own xoshiro generator are
          // the blessed homes for raw engine state.
          if (starts_with(op.loc.file, "src/des/rng") ||
              starts_with(op.loc.file, "src/common/rng")) {
            break;
          }
          out.push_back(make(
              "sema-nondet", op.loc, f,
              "std random engine " + op.detail +
                  " outside des::RngStream; draw from a named des RNG "
                  "stream instead"));
          break;
        case OpKind::UnorderedIter:
          out.push_back(make(
              "sema-nondet", op.loc, f,
              "iteration over " + op.detail +
                  " has nondeterministic order; charged or serialized "
                  "state must not depend on it"));
          break;
        default: break;
      }
    }
  }
  return out;
}

std::vector<Finding> check_hot_alloc(const Model& m) {
  std::vector<Finding> out;
  for (const Function& root : m.functions) {
    if (!root.is_definition || !is_hot_root(root) ||
        !in_model_scope(root.loc.file)) {
      continue;
    }
    for (const FuncOp& op : root.ops) {
      if (!is_alloc_op(op)) continue;
      out.push_back(make("sema-hot-alloc", op.loc, root,
                         "hot path '" + root.qualified + "' performs " +
                             alloc_detail(op) +
                             "; charge paths must be allocation-free"));
    }
    // One-level inline walk: follow calls whose definition is visible in
    // the root's own TU (header-inline or same-file). Out-of-line callees
    // in other TUs are separate roots of their own when hot.
    for (const CallSite& call : root.calls) {
      for (const Function& callee : m.functions) {
        if (!callee.is_definition || callee.tu != root.tu) continue;
        if (callee.qualified != call.callee_qualified) continue;
        if (!in_model_scope(callee.loc.file)) continue;
        for (const FuncOp& op : callee.ops) {
          if (!is_alloc_op(op)) continue;
          Finding f = make("sema-hot-alloc", op.loc, callee,
                           "hot path '" + root.qualified + "' reaches " +
                               alloc_detail(op) + " via '" +
                               callee.qualified +
                               "'; charge paths must be allocation-free");
          out.push_back(std::move(f));
        }
      }
    }
  }
  return out;
}

std::vector<Finding> check_untagged_charge(const Model& m) {
  std::vector<Finding> out;
  for (const Function& f : m.functions) {
    // Overload dodge: a charge entry point declared in the simulator core
    // without a Category parameter can never be called with one.
    if (is_charge_call(f.name) && in_charge_scope(f.loc.file)) {
      bool has_category = false;
      for (const std::string& t : f.param_types) {
        if (t.find("trace::Category") != std::string::npos) {
          has_category = true;
          break;
        }
      }
      if (!has_category) {
        out.push_back(make(
            "sema-untagged-charge", f.loc, f,
            "'" + f.qualified +
                "' overload has no trace::Category parameter; charge "
                "entry points must carry a category"));
      }
    }
    // Call sites: every charge in the simulator core must pass an explicit
    // Category argument. arg_types holds only *written* arguments, so a
    // silently defaulted Category does not count.
    for (const CallSite& call : f.calls) {
      if (!is_charge_call(call.callee)) continue;
      if (!in_charge_scope(call.loc.file)) continue;
      bool has_category = false;
      for (const std::string& t : call.arg_types) {
        if (t.find("trace::Category") != std::string::npos) {
          has_category = true;
          break;
        }
      }
      if (!has_category) {
        out.push_back(make(
            "sema-untagged-charge", call.loc, f,
            call.callee +
                " without an explicit trace::Category argument; "
                "uncategorised charges land in the Other attribution "
                "bucket"));
      }
    }
  }
  return out;
}

std::vector<Finding> run_rules(const Model& m) {
  std::vector<Finding> all;
  for (auto* check : {check_unit_leak, check_nondet, check_hot_alloc,
                      check_untagged_charge}) {
    auto found = check(m);
    all.insert(all.end(), found.begin(), found.end());
  }
  sort_and_dedupe(all);
  return all;
}

}  // namespace ncar::sxsema
