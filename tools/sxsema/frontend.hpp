#pragma once
// sxsema parsing frontend interface.
//
// The only implementation lives in frontend_clang.cpp and needs libclang
// (clang-c); CMake compiles it solely when SX4NCAR_ENABLE_SXSEMA is ON and
// libclang was found, so everything else in the tier stays buildable on
// hosts without clang dev packages.

#include <string>
#include <vector>

#include "model.hpp"

namespace ncar::sxsema {

struct FrontendOptions {
  /// Directory holding compile_commands.json; empty when `sources` is used.
  std::string compdb_dir;
  /// Explicit sources to parse (fixture mode) with `clang_args`.
  std::vector<std::string> sources;
  std::vector<std::string> clang_args;
  /// Repository root: recorded paths are made relative to it, and
  /// declarations outside it (system headers, vendored deps) are ignored.
  std::string root;
  /// Only parse compile commands whose source path contains this substring
  /// (empty parses everything).
  std::string tu_filter;
};

/// Parse every requested translation unit and append its records to `out`.
/// Returns false with a diagnostic in `error` when nothing could be parsed;
/// per-TU failures are reported in `error` but tolerated as long as at
/// least one TU loads.
bool build_model(const FrontendOptions& opts, Model& out, std::string& error);

}  // namespace ncar::sxsema
