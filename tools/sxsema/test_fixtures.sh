#!/usr/bin/env bash
# End-to-end fixture battery for sxsema. Registered as lint_sema_fixtures
# only when the real binary exists (libclang found at configure time):
# parses the good tree expecting zero findings, the bad tree expecting
# exactly the rule/file pairs in expected.txt, then round-trips the bad
# findings through --write-baseline to prove the ratchet swallows them.
set -u

SXSEMA="$1"
FIXDIR="$2" # .../tools/sxsema/testdata

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

good_out=$("$SXSEMA" --root "$FIXDIR/good" \
  --sources "$FIXDIR"/good/src/*/*.cpp -- -std=c++20 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "good fixtures: expected exit 0, got $rc:
$good_out"

bad_out=$("$SXSEMA" --root "$FIXDIR/bad" \
  --sources "$FIXDIR"/bad/src/*/*.cpp -- -std=c++20 2>&1)
rc=$?
[ "$rc" -eq 1 ] || fail "bad fixtures: expected exit 1, got $rc:
$bad_out"

# Reduce findings to sorted unique "rule file" pairs; every bad fixture
# must be caught by the family it provokes, and by nothing unexpected.
actual=$(printf '%s\n' "$bad_out" |
  sed -n 's/^\([^ :]*\):[0-9][0-9]*:[0-9][0-9]*: \[\([a-z-]*\)\] .*/\2 \1/p' |
  sort -u)
expected=$(sort -u "$FIXDIR/bad/expected.txt")
if [ "$actual" != "$expected" ]; then
  fail "bad fixtures: rule/file set mismatch
--- expected ---
$expected
--- actual ---
$actual
--- raw output ---
$bad_out"
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
"$SXSEMA" --root "$FIXDIR/bad" --sources "$FIXDIR"/bad/src/*/*.cpp \
  --write-baseline "$tmp/base.sarif" -- -std=c++20 >/dev/null 2>&1 ||
  fail "bad fixtures: --write-baseline failed"
"$SXSEMA" --root "$FIXDIR/bad" --sources "$FIXDIR"/bad/src/*/*.cpp \
  --baseline "$tmp/base.sarif" -- -std=c++20 >/dev/null 2>&1 ||
  fail "bad fixtures: run against their own baseline should be clean"

echo "sxsema fixture battery OK"
