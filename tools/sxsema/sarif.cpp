#include "sarif.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace ncar::sxsema {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleDoc {
  const char* id;
  const char* text;
};

constexpr RuleDoc kRuleDocs[] = {
    {"sema-hot-alloc",
     "charge_step/charge_cycles/access_range and numeric time-step roots "
     "(step/advect/combine) call graphs must not allocate"},
    {"sema-nondet",
     "no wall clocks, raw std random engines, or unordered iteration in "
     "model code"},
    {"sema-unit-leak",
     "no raw double/uint64 escape of dimensioned ncar::Quantity values"},
    {"sema-untagged-charge",
     "charge_cycles/charge_seconds must pass an explicit trace::Category"},
};

// --- minimal JSON reader (baseline files only) -----------------------------
//
// Just enough of a recursive-descent parser to pull partialFingerprints out
// of a SARIF document: objects, arrays, strings, and skipped scalars. The
// emitter above is the only writer; this reader is deliberately strict and
// returns false on anything malformed.

struct Json;
using JsonObject = std::map<std::string, Json>;
using JsonArray = std::vector<Json>;

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  std::string string;
  JsonArray array;
  JsonObject object;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Json& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string_value(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            // Baselines only ever hold ASCII; decode the BMP code point
            // as UTF-8 so round trips stay lossless anyway.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }

  bool value(Json& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      out.kind = Json::Kind::Object;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string_value(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return false;
        ++pos_;
        Json v;
        if (!value(v)) return false;
        out.object.emplace(std::move(key), std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      out.kind = Json::Kind::Array;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Json v;
        if (!value(v)) return false;
        out.array.push_back(std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out.kind = Json::Kind::String;
      return string_value(out.string);
    }
    if (c == 't') {
      out.kind = Json::Kind::Bool;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = Json::Kind::Bool;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = Json::Kind::Null;
      return literal("null");
    }
    out.kind = Json::Kind::Number;
    return number();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

const Json* get(const Json& j, const char* key) {
  if (j.kind != Json::Kind::Object) return nullptr;
  const auto it = j.object.find(key);
  return it == j.object.end() ? nullptr : &it->second;
}

}  // namespace

std::string write_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"sxsema\",\n"
      << "          \"version\": \"1.0.0\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < std::size(kRuleDocs); ++i) {
    out << "            {\n"
        << "              \"id\": \"" << kRuleDocs[i].id << "\",\n"
        << "              \"shortDescription\": { \"text\": \""
        << escape(kRuleDocs[i].text) << "\" }\n"
        << "            }" << (i + 1 < std::size(kRuleDocs) ? "," : "")
        << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\n"
        << "          \"ruleId\": \"" << escape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": { \"text\": \"" << escape(f.message)
        << "\" },\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": { \"uri\": \""
        << escape(f.file) << "\" },\n"
        << "                \"region\": { \"startLine\": " << f.line
        << ", \"startColumn\": " << f.col << " }\n"
        << "              }\n"
        << "            }\n"
        << "          ],\n"
        << "          \"partialFingerprints\": { \"sxsema/v1\": \""
        << escape(fingerprint(f)) << "\" }\n"
        << "        }";
  }
  out << (findings.empty() ? "]\n" : "\n      ]\n");
  out << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

bool read_baseline_fingerprints(const std::string& text,
                                std::vector<std::string>& out) {
  out.clear();
  Json doc;
  if (!Parser(text).parse(doc)) return false;
  const Json* runs = get(doc, "runs");
  if (runs == nullptr || runs->kind != Json::Kind::Array) return false;
  for (const Json& run : runs->array) {
    const Json* results = get(run, "results");
    if (results == nullptr) continue;
    if (results->kind != Json::Kind::Array) return false;
    for (const Json& result : results->array) {
      const Json* prints = get(result, "partialFingerprints");
      if (prints == nullptr) return false;
      const Json* fp = get(*prints, "sxsema/v1");
      if (fp == nullptr || fp->kind != Json::Kind::String) return false;
      out.push_back(fp->string);
    }
  }
  return true;
}

std::vector<Finding> suppress_baselined(
    const std::vector<Finding>& findings,
    const std::vector<std::string>& baseline) {
  const std::set<std::string> known(baseline.begin(), baseline.end());
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (known.count(fingerprint(f)) == 0) out.push_back(f);
  }
  return out;
}

}  // namespace ncar::sxsema
