#pragma once
// SARIF 2.1.0 emission and the baseline ratchet for sxsema.
//
// The analyzer emits findings two ways: the human `file:line:col: [rule]`
// text report (rules.hpp to_text) and a SARIF 2.1.0 log for CI artifact
// upload and code-scanning ingestion. A committed baseline
// (tools/sxsema/baseline.sarif) suppresses pre-existing findings by
// line-insensitive fingerprint, making the gate ratchet-only: new findings
// fail, grandfathered ones do not, and deleting a grandfathered finding
// never has to touch anything but the baseline file.
//
// Everything here is deterministic: results are emitted in the rule
// engine's (file, line, rule, message) order, doubles never appear, and
// the serialisation is byte-stable across hosts so CI logs diff cleanly.

#include <string>
#include <vector>

#include "rules.hpp"

namespace ncar::sxsema {

/// Serialise `findings` as a SARIF 2.1.0 run (pretty-printed, 2-space
/// indent, trailing newline). Every result carries the line-insensitive
/// fingerprint under partialFingerprints."sxsema/v1".
std::string write_sarif(const std::vector<Finding>& findings);

/// Extract the "sxsema/v1" fingerprints of every result in a SARIF
/// document (typically the committed baseline). Returns false — leaving
/// `out` empty — when `text` is not valid JSON or lacks the runs/results
/// shape; an empty results array is valid and yields true with no
/// fingerprints.
bool read_baseline_fingerprints(const std::string& text,
                                std::vector<std::string>& out);

/// Drop findings whose fingerprint appears in `baseline` (the ratchet).
std::vector<Finding> suppress_baselined(
    const std::vector<Finding>& findings,
    const std::vector<std::string>& baseline);

}  // namespace ncar::sxsema
