// sxsema CLI driver.
//
// Usage:
//   sxsema --compdb <dir> [--root <dir>] [--tu-filter <substr>]
//          [--baseline <file>] [--sarif <out>] [--write-baseline <out>]
//   sxsema --root <dir> --sources a.cpp b.cpp [...] -- <clang args...>
//
// Exit codes: 0 clean (or all findings baselined), 1 non-baselined
// findings, 2 usage or I/O error.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace {

using ncar::sxsema::Finding;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --compdb <dir> [--root <dir>] [--tu-filter <substr>]\n"
         "          [--baseline <file>] [--sarif <out>] [--write-baseline "
         "<out>]\n"
         "       "
      << argv0 << " --root <dir> --sources a.cpp [b.cpp ...] -- <clang "
                  "args...>\n";
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  ncar::sxsema::FrontendOptions opts;
  opts.root = ".";
  std::string baseline_path;
  std::string sarif_path;
  std::string write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string& slot) {
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    if (arg == "--compdb") {
      if (!next(opts.compdb_dir)) return usage(argv[0]);
    } else if (arg == "--root") {
      if (!next(opts.root)) return usage(argv[0]);
    } else if (arg == "--tu-filter") {
      if (!next(opts.tu_filter)) return usage(argv[0]);
    } else if (arg == "--baseline") {
      if (!next(baseline_path)) return usage(argv[0]);
    } else if (arg == "--sarif") {
      if (!next(sarif_path)) return usage(argv[0]);
    } else if (arg == "--write-baseline") {
      if (!next(write_baseline_path)) return usage(argv[0]);
    } else if (arg == "--sources") {
      while (i + 1 < argc && std::strcmp(argv[i + 1], "--") != 0) {
        opts.sources.push_back(argv[++i]);
      }
      if (opts.sources.empty()) return usage(argv[0]);
    } else if (arg == "--") {
      for (++i; i < argc; ++i) opts.clang_args.push_back(argv[i]);
    } else {
      std::cerr << "sxsema: unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (opts.compdb_dir.empty() == opts.sources.empty()) {
    return usage(argv[0]);  // exactly one input mode
  }

  ncar::sxsema::Model model;
  std::string error;
  if (!ncar::sxsema::build_model(opts, model, error)) {
    std::cerr << (error.empty() ? "sxsema: frontend failed" : error) << "\n";
    return 2;
  }
  if (!error.empty()) std::cerr << error;  // tolerated per-TU failures

  std::vector<Finding> findings = ncar::sxsema::run_rules(model);

  if (!sarif_path.empty() &&
      !write_file(sarif_path, ncar::sxsema::write_sarif(findings))) {
    std::cerr << "sxsema: cannot write SARIF to " << sarif_path << "\n";
    return 2;
  }
  if (!write_baseline_path.empty()) {
    if (!write_file(write_baseline_path,
                    ncar::sxsema::write_sarif(findings))) {
      std::cerr << "sxsema: cannot write baseline to " << write_baseline_path
                << "\n";
      return 2;
    }
    std::cout << "sxsema: wrote baseline with " << findings.size()
              << " finding(s) to " << write_baseline_path << "\n";
    return 0;
  }

  std::vector<Finding> fresh = findings;
  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "sxsema: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::vector<std::string> prints;
    if (!ncar::sxsema::read_baseline_fingerprints(text, prints)) {
      std::cerr << "sxsema: malformed baseline " << baseline_path << "\n";
      return 2;
    }
    fresh = ncar::sxsema::suppress_baselined(findings, prints);
    suppressed = findings.size() - fresh.size();
  }

  for (const Finding& f : fresh) std::cout << to_text(f) << "\n";
  std::cout << "sxsema: " << fresh.size() << " finding(s)";
  if (suppressed != 0) std::cout << " (" << suppressed << " baselined)";
  std::cout << " across " << model.functions.size() << " function(s)\n";
  return fresh.empty() ? 0 : 1;
}
