// libclang (clang-c) frontend: lowers translation units into the sxsema
// semantic model. This is the only file in the tier that needs libclang;
// CMake builds it solely when SX4NCAR_ENABLE_SXSEMA found the library.
//
// The walk is two-tier: find_functions() descends through namespaces and
// record types to every function-shaped declaration located under the
// repository root, and collect_body() then walks that function's subtree
// (nested lambdas included, attributed to the lexical owner) recording the
// calls and the interesting operations the rules consume. Everything else
// — system headers, dependency code — is skipped at the declaration level,
// which keeps the model small and the run deterministic.

#include "frontend.hpp"

#include <clang-c/CXCompilationDatabase.h>
#include <clang-c/Index.h>

#include <algorithm>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

namespace ncar::sxsema {

namespace {

namespace fs = std::filesystem;

std::string to_string(CXString s) {
  const char* c = clang_getCString(s);
  std::string out = c == nullptr ? "" : c;
  clang_disposeString(s);
  return out;
}

/// Generic recursive visitor: `f` returns the CXChildVisitResult.
template <class F>
void visit_children(CXCursor cursor, F&& f) {
  clang_visitChildren(
      cursor,
      [](CXCursor c, CXCursor parent, CXClientData data) {
        return (*static_cast<F*>(data))(c, parent);
      },
      &f);
}

struct Walker {
  std::string root;      ///< absolute, lexically normal, with trailing '/'
  std::string tu_name;   ///< root-relative main file of the current TU
  Model* model = nullptr;

  // --- locations -----------------------------------------------------------

  /// Root-relative POSIX path of `loc`'s spelling file ("" when the file
  /// is outside the root).
  std::string rel_file(CXSourceLocation loc, unsigned* line = nullptr,
                       unsigned* col = nullptr,
                       unsigned* offset = nullptr) const {
    CXFile file;
    unsigned l = 0, c = 0, off = 0;
    clang_getSpellingLocation(loc, &file, &l, &c, &off);
    if (line != nullptr) *line = l;
    if (col != nullptr) *col = c;
    if (offset != nullptr) *offset = off;
    if (file == nullptr) return "";
    const std::string abs =
        fs::path(to_string(clang_getFileName(file))).lexically_normal()
            .generic_string();
    if (abs.rfind(root, 0) != 0) return "";
    return abs.substr(root.size());
  }

  SourceLoc cursor_loc(CXCursor c) const {
    unsigned line = 0, col = 0;
    SourceLoc out;
    out.file = rel_file(clang_getCursorLocation(c), &line, &col);
    out.line = static_cast<int>(line);
    out.col = static_cast<int>(col);
    return out;
  }

  // --- names and types -----------------------------------------------------

  static std::string qualified_name(CXCursor decl) {
    std::string name = to_string(clang_getCursorSpelling(decl));
    CXCursor parent = clang_getCursorSemanticParent(decl);
    while (clang_Cursor_isNull(parent) == 0) {
      const CXCursorKind k = clang_getCursorKind(parent);
      if (k == CXCursor_TranslationUnit || clang_isDeclaration(k) == 0) break;
      const std::string part = to_string(clang_getCursorSpelling(parent));
      if (!part.empty()) name = part + "::" + name;
      parent = clang_getCursorSemanticParent(parent);
    }
    return name;
  }

  static std::string canonical_spelling(CXType t) {
    return to_string(clang_getTypeSpelling(clang_getCanonicalType(t)));
  }

  /// Dimension name of a canonical Quantity spelling:
  /// "ncar::Quantity<ncar::dim::Cycles>" -> "Cycles"; "" when not one.
  static std::string quantity_dim(const std::string& type) {
    const std::size_t q = type.find("Quantity<");
    if (q == std::string::npos) return "";
    std::size_t start = type.find("dim::", q);
    if (start == std::string::npos) {
      start = q + std::string("Quantity<").size();
    } else {
      start += std::string("dim::").size();
    }
    std::size_t end = start;
    while (end < type.size() &&
           (std::isalnum(static_cast<unsigned char>(type[end])) != 0 ||
            type[end] == '_')) {
      ++end;
    }
    return type.substr(start, end - start);
  }

  static bool is_function_kind(CXCursorKind k) {
    return k == CXCursor_FunctionDecl || k == CXCursor_CXXMethod ||
           k == CXCursor_Constructor || k == CXCursor_Destructor ||
           k == CXCursor_ConversionFunction ||
           k == CXCursor_FunctionTemplate;
  }

  static bool is_record_kind(CXCursorKind k) {
    return k == CXCursor_Namespace || k == CXCursor_StructDecl ||
           k == CXCursor_ClassDecl || k == CXCursor_UnionDecl ||
           k == CXCursor_ClassTemplate ||
           k == CXCursor_ClassTemplatePartialSpecialization ||
           k == CXCursor_LinkageSpec || k == CXCursor_UnexposedDecl;
  }

  // --- body collection -----------------------------------------------------

  /// Dimension of the Quantity receiver of a `.value()` member call, or ""
  /// when `call` is not a Quantity unwrap.
  std::string unwrap_dim(CXCursor call) const {
    if (to_string(clang_getCursorSpelling(call)) != "value") return "";
    std::string dim;
    visit_children(call, [&](CXCursor c, CXCursor) {
      if (clang_getCursorKind(c) == CXCursor_MemberRefExpr) {
        visit_children(c, [&](CXCursor base, CXCursor) {
          const std::string t =
              canonical_spelling(clang_getCursorType(base));
          const std::string d = quantity_dim(t);
          if (!d.empty() && dim.empty()) dim = d;
          return CXChildVisit_Break;
        });
        return CXChildVisit_Break;
      }
      return CXChildVisit_Continue;
    });
    return dim;
  }

  /// First Quantity unwrap dimension found anywhere below `cursor`
  /// ("" when none); `other_than` skips unwraps of that dimension.
  std::string find_unwrap_below(CXCursor cursor,
                                const std::string& other_than) const {
    std::string found;
    const std::function<void(CXCursor)> walk = [&](CXCursor c) {
      visit_children(c, [&](CXCursor child, CXCursor) {
        if (!found.empty()) return CXChildVisit_Break;
        if (clang_getCursorKind(child) == CXCursor_CallExpr) {
          const std::string dim = unwrap_dim(child);
          if (!dim.empty() && dim != other_than) {
            found = dim;
            return CXChildVisit_Break;
          }
        }
        walk(child);
        return found.empty() ? CXChildVisit_Continue : CXChildVisit_Break;
      });
    };
    walk(cursor);
    return found;
  }

  /// Receiver type of a member call like `recv.push_back(x)` ("" for free
  /// functions).
  std::string receiver_type(CXCursor call) const {
    std::string type;
    visit_children(call, [&](CXCursor c, CXCursor) {
      if (clang_getCursorKind(c) == CXCursor_MemberRefExpr) {
        visit_children(c, [&](CXCursor base, CXCursor) {
          type = canonical_spelling(clang_getCursorType(base));
          return CXChildVisit_Break;
        });
      }
      return CXChildVisit_Break;
    });
    return type;
  }

  static const char* container_of(const std::string& canonical) {
    if (canonical.find("std::vector<") != std::string::npos ||
        canonical.find("std::__1::vector<") != std::string::npos) {
      return "std::vector";
    }
    if (canonical.find("basic_string<") != std::string::npos) {
      return "std::string";
    }
    if (canonical.find("deque<") != std::string::npos) return "std::deque";
    return nullptr;
  }

  static const char* unordered_of(const std::string& canonical) {
    if (canonical.find("unordered_map<") != std::string::npos) {
      return "std::unordered_map";
    }
    if (canonical.find("unordered_set<") != std::string::npos) {
      return "std::unordered_set";
    }
    if (canonical.find("unordered_multimap<") != std::string::npos) {
      return "std::unordered_multimap";
    }
    if (canonical.find("unordered_multiset<") != std::string::npos) {
      return "std::unordered_multiset";
    }
    return nullptr;
  }

  static bool is_growth_member(const std::string& name) {
    static const char* const kGrowth[] = {
        "push_back", "emplace_back", "push_front", "emplace_front",
        "resize",    "reserve",      "insert",     "emplace",
        "append",    "assign"};
    return std::find_if(std::begin(kGrowth), std::end(kGrowth),
                        [&](const char* g) { return name == g; }) !=
           std::end(kGrowth);
  }

  static bool is_banned_callee(const std::string& name,
                               const std::string& qualified) {
    static const char* const kBanned[] = {
        "time",       "clock",        "gettimeofday", "clock_gettime",
        "rand",       "srand",        "drand48",      "lrand48",
        "random",     "getrusage"};
    for (const char* b : kBanned) {
      if (name == b) return true;
    }
    return name == "now" && qualified.find("_clock") != std::string::npos;
  }

  static bool is_rng_engine_type(const std::string& canonical) {
    static const char* const kEngines[] = {
        "mersenne_twister_engine",   "linear_congruential_engine",
        "subtract_with_carry_engine", "random_device",
        "uniform_int_distribution",  "uniform_real_distribution",
        "normal_distribution",       "bernoulli_distribution",
        "discard_block_engine",      "philox_engine"};
    for (const char* e : kEngines) {
      if (canonical.find(e) != std::string::npos) return true;
    }
    return false;
  }

  void collect_call(CXCursor call, Function& fn) const {
    const std::string callee = to_string(clang_getCursorSpelling(call));
    if (callee.empty()) return;
    CallSite site;
    site.callee = callee;
    site.loc = cursor_loc(call);
    const CXCursor ref = clang_getCursorReferenced(call);
    site.callee_qualified =
        clang_Cursor_isNull(ref) == 0 ? qualified_name(ref) : callee;

    // Written arguments only: a default-argument expression materialised
    // by the compiler has its spelling location at the *declaration*, not
    // inside the call's extent, so the extent test drops it.
    unsigned call_begin = 0, call_end = 0;
    const CXSourceRange extent = clang_getCursorExtent(call);
    const std::string call_file =
        rel_file(clang_getRangeStart(extent), nullptr, nullptr, &call_begin);
    rel_file(clang_getRangeEnd(extent), nullptr, nullptr, &call_end);
    const int n = clang_Cursor_getNumArguments(call);
    for (int i = 0; i < n; ++i) {
      const CXCursor arg =
          clang_Cursor_getArgument(call, static_cast<unsigned>(i));
      unsigned arg_off = 0;
      const std::string arg_file = rel_file(clang_getCursorLocation(arg),
                                            nullptr, nullptr, &arg_off);
      if (arg_file != call_file || arg_off < call_begin ||
          arg_off > call_end) {
        continue;
      }
      site.arg_types.push_back(
          canonical_spelling(clang_getCursorType(arg)));
    }
    fn.calls.push_back(std::move(site));
  }

  void collect_body(CXCursor body, Function& fn) const {
    const std::function<void(CXCursor)> walk = [&](CXCursor cursor) {
      visit_children(cursor, [&](CXCursor c, CXCursor) {
        const CXCursorKind kind = clang_getCursorKind(c);
        switch (kind) {
          case CXCursor_CallExpr: {
            const std::string dim = unwrap_dim(c);
            if (!dim.empty()) {
              fn.ops.push_back(
                  {OpKind::ValueUnwrap, cursor_loc(c), dim, ""});
            } else {
              const CXCursor ref = clang_getCursorReferenced(c);
              const bool is_ctor =
                  clang_Cursor_isNull(ref) == 0 &&
                  clang_getCursorKind(ref) == CXCursor_Constructor;
              const std::string type =
                  canonical_spelling(clang_getCursorType(c));
              const std::string wrap_dim = quantity_dim(type);
              if (is_ctor && !wrap_dim.empty()) {
                fn.ops.push_back({OpKind::QuantityWrap, cursor_loc(c),
                                  wrap_dim,
                                  find_unwrap_below(c, wrap_dim)});
              }
              const std::string callee =
                  to_string(clang_getCursorSpelling(c));
              const std::string qualified =
                  clang_Cursor_isNull(ref) == 0 ? qualified_name(ref)
                                                : callee;
              if (is_banned_callee(callee, qualified)) {
                fn.ops.push_back({OpKind::BannedCall, cursor_loc(c),
                                  qualified.empty() ? callee : qualified,
                                  ""});
              }
              if (is_growth_member(callee)) {
                const std::string recv = receiver_type(c);
                const char* container = container_of(recv);
                if (container != nullptr) {
                  fn.ops.push_back({OpKind::ContainerGrowth, cursor_loc(c),
                                    callee, container});
                }
              }
              if (callee == "begin" || callee == "cbegin") {
                const char* unordered = unordered_of(receiver_type(c));
                if (unordered != nullptr) {
                  fn.ops.push_back({OpKind::UnorderedIter, cursor_loc(c),
                                    unordered, ""});
                }
              }
              collect_call(c, fn);
            }
            break;
          }
          case CXCursor_CXXNewExpr:
            fn.ops.push_back({OpKind::NewExpr, cursor_loc(c), "", ""});
            break;
          case CXCursor_ReturnStmt: {
            const std::string dim = find_unwrap_below(c, "");
            if (!dim.empty()) {
              fn.ops.push_back({OpKind::ReturnRaw, cursor_loc(c), dim, ""});
            }
            break;
          }
          case CXCursor_CXXForRangeStmt: {
            visit_children(c, [&](CXCursor child, CXCursor) {
              const char* unordered = unordered_of(
                  canonical_spelling(clang_getCursorType(child)));
              if (unordered != nullptr) {
                fn.ops.push_back({OpKind::UnorderedIter, cursor_loc(child),
                                  unordered, ""});
                return CXChildVisit_Break;
              }
              return CXChildVisit_Continue;
            });
            break;
          }
          case CXCursor_VarDecl: {
            const std::string canonical =
                canonical_spelling(clang_getCursorType(c));
            if (canonical.find('&') == std::string::npos &&
                canonical.find('*') == std::string::npos) {
              if (canonical.find("basic_string<") != std::string::npos) {
                fn.ops.push_back({OpKind::StringMake, cursor_loc(c),
                                  "std::string", ""});
              }
              if (is_rng_engine_type(canonical)) {
                fn.ops.push_back(
                    {OpKind::RngEngine, cursor_loc(c),
                     to_string(clang_getTypeSpelling(
                         clang_getCursorType(c))),
                     ""});
              }
            }
            break;
          }
          default: break;
        }
        walk(c);
        return CXChildVisit_Continue;
      });
    };
    walk(body);
  }

  void record_function(CXCursor c) {
    const SourceLoc loc = cursor_loc(c);
    if (loc.file.empty()) return;  // outside the repository root
    Function fn;
    fn.name = to_string(clang_getCursorSpelling(c));
    fn.qualified = qualified_name(c);
    fn.loc = loc;
    fn.tu = tu_name;
    fn.result_type = canonical_spelling(clang_getCursorResultType(c));
    const CXType type = clang_getCursorType(c);
    const int nargs = clang_getNumArgTypes(type);
    for (int i = 0; i < nargs; ++i) {
      fn.param_types.push_back(canonical_spelling(
          clang_getArgType(type, static_cast<unsigned>(i))));
    }
    const auto access = clang_getCXXAccessSpecifier(c);
    fn.is_public = access != CX_CXXPrivate && access != CX_CXXProtected;
    fn.is_definition = clang_isCursorDefinition(c) != 0;
    if (fn.is_definition) collect_body(c, fn);
    model->functions.push_back(std::move(fn));
  }

  void find_functions(CXCursor scope) {
    visit_children(scope, [&](CXCursor c, CXCursor) {
      const CXCursorKind kind = clang_getCursorKind(c);
      if (is_function_kind(kind)) {
        record_function(c);
        return CXChildVisit_Continue;
      }
      if (is_record_kind(kind)) find_functions(c);
      return CXChildVisit_Continue;
    });
  }

  void run(CXTranslationUnit tu) {
    tu_name = fs::path(to_string(clang_getTranslationUnitSpelling(tu)))
                  .lexically_normal()
                  .generic_string();
    if (tu_name.rfind(root, 0) == 0) tu_name = tu_name.substr(root.size());
    find_functions(clang_getTranslationUnitCursor(tu));
  }
};

std::string normal_root(const std::string& root) {
  std::string out = fs::absolute(fs::path(root)).lexically_normal()
                        .generic_string();
  if (out.empty() || out.back() != '/') out += '/';
  return out;
}

bool parse_one(CXIndex index, const std::vector<std::string>& args,
               Walker& walker, std::string& error) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    // The output file is irrelevant to parsing and may point at an
    // unwritable build tree.
    if (args[i] == "-o" && i + 1 < args.size()) {
      ++i;
      continue;
    }
    argv.push_back(args[i].c_str());
  }
  CXTranslationUnit tu = nullptr;
  const CXErrorCode rc = clang_parseTranslationUnit2FullArgv(
      index, nullptr, argv.data(), static_cast<int>(argv.size()), nullptr, 0,
      CXTranslationUnit_None, &tu);
  if (rc != CXError_Success || tu == nullptr) {
    error += "sxsema: failed to parse (code " + std::to_string(rc) + "): ";
    for (const char* a : argv) error += std::string(a) + " ";
    error += "\n";
    if (tu != nullptr) clang_disposeTranslationUnit(tu);
    return false;
  }
  walker.run(tu);
  clang_disposeTranslationUnit(tu);
  return true;
}

}  // namespace

bool build_model(const FrontendOptions& opts, Model& out,
                 std::string& error) {
  Walker walker;
  walker.root = normal_root(opts.root.empty() ? "." : opts.root);
  walker.model = &out;

  CXIndex index = clang_createIndex(/*excludeDeclarationsFromPCH=*/0,
                                    /*displayDiagnostics=*/0);
  std::size_t parsed = 0;

  if (!opts.compdb_dir.empty()) {
    CXCompilationDatabase_Error db_error = CXCompilationDatabase_NoError;
    CXCompilationDatabase db = clang_CompilationDatabase_fromDirectory(
        opts.compdb_dir.c_str(), &db_error);
    if (db_error != CXCompilationDatabase_NoError) {
      error = "sxsema: cannot load compile_commands.json from " +
              opts.compdb_dir;
      clang_disposeIndex(index);
      return false;
    }
    CXCompileCommands commands =
        clang_CompilationDatabase_getAllCompileCommands(db);
    const unsigned n = clang_CompileCommands_getSize(commands);
    for (unsigned i = 0; i < n; ++i) {
      CXCompileCommand cmd = clang_CompileCommands_getCommand(commands, i);
      const std::string file =
          to_string(clang_CompileCommand_getFilename(cmd));
      if (!opts.tu_filter.empty() &&
          file.find(opts.tu_filter) == std::string::npos) {
        continue;
      }
      std::vector<std::string> args;
      const unsigned nargs = clang_CompileCommand_getNumArgs(cmd);
      for (unsigned a = 0; a < nargs; ++a) {
        args.push_back(to_string(clang_CompileCommand_getArg(cmd, a)));
      }
      if (parse_one(index, args, walker, error)) ++parsed;
    }
    clang_CompileCommands_dispose(commands);
    clang_CompilationDatabase_dispose(db);
  }

  for (const std::string& source : opts.sources) {
    std::vector<std::string> args;
    args.push_back("clang++");
    args.insert(args.end(), opts.clang_args.begin(), opts.clang_args.end());
    args.push_back(source);
    if (parse_one(index, args, walker, error)) ++parsed;
  }

  clang_disposeIndex(index);
  if (parsed == 0) {
    if (error.empty()) error = "sxsema: no translation units parsed";
    return false;
  }
  return true;
}

}  // namespace ncar::sxsema
