#pragma once
// sxsema rule engine: AST-level project invariants, tier 2 of the repo's
// static analysis (tier 1 is the token-based sxlint).
//
// Four rule families, run over the semantic model (model.hpp):
//
//   sema-unit-leak       public functions in src/sxs, src/machines,
//                        src/iosim and src/des must not return raw
//                        double/uint64 values whose dimension is inferable
//                        (a `.value()` unwrap flowing into the return), and
//                        cycles<->seconds re-wrapping is only legal inside
//                        MachineConfig::to_seconds / to_cycles.
//   sema-nondet          model code must not call wall clocks or global
//                        RNG primitives, must not declare std:: random
//                        engines outside the des RNG layer, and must not
//                        iterate unordered containers (iteration order is
//                        nondeterministic and poisons charged or
//                        serialized state).
//   sema-hot-alloc       charge_step / charge_cycles / charge_seconds /
//                        access_range / access_stream plus the numeric
//                        time-step roots (step / baroclinic_step /
//                        solve_barotropic / advect / combine) and
//                        everything they call one level deep (definitions
//                        visible in the same TU) must not allocate: no
//                        new-expressions, no container growth, no
//                        std::string construction.
//   sema-untagged-charge charge_cycles / charge_seconds call sites in
//                        src/sxs and src/iosim must pass an explicit
//                        trace::Category argument (the semantic re-take of
//                        sxlint's trace-category: overloads, wrappers and
//                        silently defaulted arguments cannot dodge a type
//                        check), and charge_* overloads declared there
//                        must carry a Category parameter.
//
// Findings are strictly ordered by (file, line, rule, message) and exact
// duplicates are dropped, so tier-1 and tier-2 reports diff cleanly.

#include <string>
#include <vector>

#include "model.hpp"

namespace ncar::sxsema {

struct Finding {
  std::string rule;
  std::string file;  ///< repository-relative POSIX path
  int line = 0;
  int col = 1;
  std::string symbol;  ///< enclosing function (qualified), for fingerprints
  std::string message;
};

/// `file:line:col: [rule] message` — matches the sxlint report shape.
std::string to_text(const Finding& f);

/// Line-insensitive identity used by the SARIF baseline: a finding keeps
/// its fingerprint when code above it moves it to another line.
std::string fingerprint(const Finding& f);

/// Run every rule family over `m`; sorted by (file, line, rule, message),
/// exact duplicates removed.
std::vector<Finding> run_rules(const Model& m);

/// Individual families (exposed for the fixture-driven unit tests).
std::vector<Finding> check_unit_leak(const Model& m);
std::vector<Finding> check_nondet(const Model& m);
std::vector<Finding> check_hot_alloc(const Model& m);
std::vector<Finding> check_untagged_charge(const Model& m);

/// Sort by (file, line, rule, message) and drop exact duplicates.
void sort_and_dedupe(std::vector<Finding>& findings);

}  // namespace ncar::sxsema
