#pragma once
// sxsema semantic model: the frontend-independent view of the repository
// that the rules run over.
//
// The libclang frontend (frontend_clang.cpp, built only when clang-c is
// available) lowers every translation unit of compile_commands.json into
// this small record set; the rule engine (rules.cpp) never sees an AST.
// The split is deliberate:
//
//   * the rules, the SARIF emitter and the baseline ratchet are plain C++
//     with no external dependency, so they build and unit-test everywhere
//     (test_sxsema constructs Model values mirroring the fixture sources
//     in testdata/);
//   * the frontend is the only file that needs libclang, so a build host
//     without it still compiles and tests the whole tier minus the parser.
//
// A Function is one function-shaped declaration (free function, method,
// constructor, lambda bodies fold into their lexical owner) with the three
// things the rules consume: its public signature, the calls it makes, and
// a flat list of "interesting operations" found in its body.

#include <string>
#include <vector>

namespace ncar::sxsema {

struct SourceLoc {
  std::string file;  ///< repository-relative POSIX path
  int line = 0;
  int col = 1;
};

/// Body operations the rules care about. The frontend records these while
/// walking a function's statement tree (including nested lambdas).
enum class OpKind {
  /// Quantity<dim::X>::value() call; detail = dimension name ("Cycles").
  ValueUnwrap,
  /// Construction of a Quantity<dim::X> from raw arithmetic;
  /// detail = dimension name, aux = dimension of a ValueUnwrap found
  /// inside the constructor argument ("" when the argument has none).
  QuantityWrap,
  /// Return statement whose expression contains a ValueUnwrap;
  /// detail = dimension of the unwrap.
  ReturnRaw,
  /// new-expression.
  NewExpr,
  /// Growth call (push_back/emplace_back/resize/reserve/insert/append/
  /// assign) on a std::vector / std::deque / std::string receiver;
  /// detail = member name, aux = receiver type.
  ContainerGrowth,
  /// Local or temporary std::string constructed in the body.
  StringMake,
  /// Iteration over an unordered associative container (range-for or
  /// explicit begin()); detail = container type spelling.
  UnorderedIter,
  /// Call to a wall-clock / global-RNG primitive; detail = callee.
  BannedCall,
  /// Declaration of a std:: random engine or distribution outside the
  /// des::RngStream layer; detail = type spelling.
  RngEngine,
};

struct FuncOp {
  OpKind kind;
  SourceLoc loc;
  std::string detail;
  std::string aux;
};

struct CallSite {
  std::string callee;            ///< unqualified spelling ("charge_cycles")
  std::string callee_qualified;  ///< "ncar::sxs::Cpu::charge_cycles" when
                                 ///< the reference resolves, else == callee
  SourceLoc loc;
  /// Canonical type spellings of the *written* arguments (default-argument
  /// expressions materialised by the compiler are excluded, which is what
  /// lets the untagged-charge rule see a silently defaulted Category).
  std::vector<std::string> arg_types;
};

struct Function {
  std::string name;       ///< unqualified spelling
  std::string qualified;  ///< fully qualified ("ncar::sxs::Cpu::vec")
  std::string result_type;  ///< canonical spelling of the return type
  /// Canonical parameter type spellings, declaration order.
  std::vector<std::string> param_types;
  SourceLoc loc;
  /// Main source file of the translation unit this record was seen in;
  /// the hot-path walk only follows calls into definitions visible in the
  /// same TU (out-of-line callees in other TUs are their own roots).
  std::string tu;
  bool is_public = true;  ///< class access; free functions are public
  bool is_definition = false;
  std::vector<CallSite> calls;
  std::vector<FuncOp> ops;
};

struct Model {
  std::vector<Function> functions;
};

}  // namespace ncar::sxsema
