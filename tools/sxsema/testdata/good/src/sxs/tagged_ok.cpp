// GOOD fixture (sema-untagged-charge): the charge entry point requires a
// trace::Category and every call writes one explicitly. Nothing here may
// be flagged.
namespace trace {
enum class Category { VectorAdd, Other };
}

namespace sxs {
class Cpu {
 public:
  void charge_cycles(double n, trace::Category c) {
    total_ += n;
    (void)c;
  }

 private:
  double total_ = 0.0;
};

class Pipe {
 public:
  void issue(double n) { cpu_.charge_cycles(n, trace::Category::VectorAdd); }

 private:
  Cpu cpu_;
};
}  // namespace sxs
