// GOOD fixture (sema-hot-alloc): the cold configure() path may allocate;
// the hot access_range() path and the helper it reaches only touch
// preallocated storage. Nothing here may be flagged.
#include <vector>

namespace sxs {
class CacheSim {
 public:
  void configure(unsigned lines) {
    tags_.resize(lines);  // cold setup path: allocation is fine here
  }
  void access_range(unsigned long addr, unsigned long words) {
    for (unsigned long w = 0; w < words; ++w) bump(addr + w);
  }

 private:
  void bump(unsigned long addr) { tags_[addr % tags_.size()] += 1; }
  std::vector<unsigned> tags_;
};
}  // namespace sxs
