// GOOD fixture (sema-unit-leak): typed quantities cross the public
// surface, raw doubles stay private, and cycles<->seconds conversion goes
// through MachineConfig. Nothing here may be flagged.
namespace ncar {
namespace dim {
struct Cycles {};
struct Seconds {};
}  // namespace dim

template <class Dim>
class Quantity {
 public:
  explicit Quantity(double v) : v_(v) {}
  double value() const { return v_; }

 private:
  double v_;
};

struct MachineConfig {
  double clock_hz = 2.0e9;
  Quantity<dim::Seconds> to_seconds(Quantity<dim::Cycles> c) const {
    return Quantity<dim::Seconds>(c.value() / clock_hz);
  }
  Quantity<dim::Cycles> to_cycles(Quantity<dim::Seconds> s) const {
    return Quantity<dim::Cycles>(s.value() * clock_hz);
  }
};

class Stage {
 public:
  Quantity<dim::Cycles> busy() const { return busy_; }  // typed: fine

 private:
  double busy_raw() const { return busy_.value(); }  // private: allowed
  Quantity<dim::Cycles> busy_{0.0};
};
}  // namespace ncar
