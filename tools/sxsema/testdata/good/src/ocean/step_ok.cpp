// GOOD fixture (sema-hot-alloc): the cold reset() path sizes the
// workspace; the hot step() path and the helper it reaches only write
// through preallocated storage. Nothing here may be flagged.
#include <vector>

namespace ocean {
class BasinModel {
 public:
  void reset(unsigned cells) {
    eta_.assign(cells, 0.0);  // cold setup path: allocation is fine here
  }
  void step(unsigned cells) {
    for (unsigned c = 0; c < cells; ++c) relax(c);
  }

 private:
  void relax(unsigned c) { eta_[c % eta_.size()] *= 0.99; }
  std::vector<double> eta_;
};
}  // namespace ocean
