// GOOD fixture (sema-nondet): this file is the des RNG layer itself
// (src/des/rng*), the one blessed home for raw std engine state, and it
// iterates an ordered std::map. Nothing here may be flagged.
#include <map>
#include <random>

namespace des {
class RngStream {
 public:
  explicit RngStream(unsigned long seed) : engine_(seed) {}
  double draw() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

 private:
  std::mt19937_64 engine_;  // exempt: lives inside src/des/rng*
};

inline double checksum(const std::map<int, double>& ordered) {
  double sum = 0.0;
  for (const auto& entry : ordered) {  // ordered: deterministic
    sum += entry.second;
  }
  return sum;
}
}  // namespace des
