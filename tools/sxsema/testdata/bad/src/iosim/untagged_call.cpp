// BAD fixture (sema-untagged-charge): the charge entry point carries a
// defaulted trace::Category, and transfer() silently relies on the
// default. Only *written* arguments count, so the call is flagged while
// transfer_tagged() stays clean.
namespace trace {
enum class Category { VectorAdd, Other };
}

namespace iosim {
class Cpu {
 public:
  void charge_cycles(double n, trace::Category c = trace::Category::Other) {
    total_ += n;
    (void)c;
  }

 private:
  double total_ = 0.0;
};

class Xmu {
 public:
  void transfer(double amount) {
    cpu_.charge_cycles(amount);  // silently defaulted category
  }
  void transfer_tagged(double amount) {
    cpu_.charge_cycles(amount, trace::Category::VectorAdd);  // explicit: fine
  }

 private:
  Cpu cpu_;
};
}  // namespace iosim
