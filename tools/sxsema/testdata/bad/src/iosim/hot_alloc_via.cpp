// BAD fixture (sema-hot-alloc): charge_step looks clean, but one level
// down its same-TU helper grows a vector. The one-level inline walk must
// attribute the allocation back to the hot root.
#include <vector>

namespace iosim {
class DiskModel {
 public:
  void charge_step(double amount) { note_event(amount); }

 private:
  void note_event(double amount) { events_.push_back(amount); }
  std::vector<double> events_;
};
}  // namespace iosim
