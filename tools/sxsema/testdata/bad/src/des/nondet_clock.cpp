// BAD fixture (sema-nondet): wall-clock and libc RNG calls inside model
// code. Simulated time and randomness must come from the model, never the
// host. The banned functions are declared locally so the fixture parses
// without system headers.
extern "C" {
long time(long* tloc);
int rand(void);
}

namespace des {
inline double wall_seed() {
  return static_cast<double>(time(nullptr)) + static_cast<double>(rand());
}
}  // namespace des
