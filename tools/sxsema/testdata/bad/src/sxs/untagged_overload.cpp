// BAD fixture (sema-untagged-charge): a charge_cycles overload with no
// trace::Category parameter. Token linting can't see that callers of this
// overload can never pass a category; the semantic rule can.
namespace trace {
enum class Category { VectorAdd, Other };
}

namespace sxs {
class Pipe {
 public:
  void charge_cycles(double n) { total_ += n; }  // overload dodge
  void charge_cycles(double n, trace::Category c) {
    total_ += n;
    (void)c;
  }

 private:
  double total_ = 0.0;
};
}  // namespace sxs
