// BAD fixture (sema-unit-leak): a public accessor strips the Seconds
// dimension with .value() and returns a raw double. The typed sibling
// accessor right below it must stay clean.
namespace ncar {
namespace dim {
struct Seconds {};
}  // namespace dim

template <class Dim>
class Quantity {
 public:
  explicit Quantity(double v) : v_(v) {}
  double value() const { return v_; }

 private:
  double v_;
};

class StepTimer {
 public:
  double elapsed_seconds() const { return total_.value(); }  // leak
  Quantity<dim::Seconds> elapsed() const { return total_; }  // typed: fine

 private:
  Quantity<dim::Seconds> total_{0.0};
};
}  // namespace ncar
