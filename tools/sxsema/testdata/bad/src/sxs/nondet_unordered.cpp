// BAD fixture (sema-nondet): iterating an unordered container. The sum
// here is order-insensitive, but the rule is deliberately conservative —
// charged or serialized state must never depend on hash-bucket order.
#include <unordered_map>

namespace sxs {
class BankBook {
 public:
  double total() const {
    double sum = 0.0;
    for (const auto& entry : pending_) {  // nondeterministic order
      sum += entry.second;
    }
    return sum;
  }

 private:
  std::unordered_map<int, double> pending_;
};
}  // namespace sxs
