// BAD fixture (sema-hot-alloc): access_range is a hot root and both
// allocates with a new-expression and grows a vector. Two findings.
#include <vector>

namespace sxs {
class CacheSim {
 public:
  void access_range(unsigned long addr, unsigned long words) {
    touched_.push_back(addr);             // container growth on the hot path
    double* scratch = new double[words];  // allocation on the hot path
    scratch[0] = 0.0;
    delete[] scratch;
  }

 private:
  std::vector<unsigned long> touched_;
};
}  // namespace sxs
