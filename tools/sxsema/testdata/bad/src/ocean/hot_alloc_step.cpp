// BAD fixture (sema-hot-alloc): `step` is a numeric time-step root. A
// per-step scratch allocation belongs in reset()/workspace setup, not on
// the hot path. One finding.

namespace ocean {
class BasinModel {
 public:
  void step(unsigned cells) {
    double* scratch = new double[cells];  // per-step allocation
    scratch[0] = 0.0;
    delete[] scratch;
  }
};
}  // namespace ocean
