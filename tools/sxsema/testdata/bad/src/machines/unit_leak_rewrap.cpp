// BAD fixture (sema-unit-leak): hasty_seconds() converts Cycles to Seconds
// by unwrapping and re-wrapping with an ad-hoc clock rate instead of going
// through MachineConfig::to_seconds. The blessed conversion below it is the
// exempted good twin.
namespace ncar {
namespace dim {
struct Cycles {};
struct Seconds {};
}  // namespace dim

template <class Dim>
class Quantity {
 public:
  explicit Quantity(double v) : v_(v) {}
  double value() const { return v_; }

 private:
  double v_;
};

inline Quantity<dim::Seconds> hasty_seconds(Quantity<dim::Cycles> c) {
  return Quantity<dim::Seconds>(c.value() / 2.0e9);  // ad-hoc clock: leak
}

struct MachineConfig {
  double clock_hz = 2.0e9;
  Quantity<dim::Seconds> to_seconds(Quantity<dim::Cycles> c) const {
    return Quantity<dim::Seconds>(c.value() / clock_hz);  // blessed
  }
};
}  // namespace ncar
