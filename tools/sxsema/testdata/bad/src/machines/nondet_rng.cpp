// BAD fixture (sema-nondet): a raw std random engine living outside the
// des RNG layer. Draws must come from a named des::RngStream so replays
// and partitioned streams stay reproducible.
#include <random>

namespace machines {
inline unsigned noisy_latency(unsigned bound) {
  std::mt19937_64 gen(42);  // engine outside des::RngStream
  return static_cast<unsigned>(gen() % bound);
}
}  // namespace machines
