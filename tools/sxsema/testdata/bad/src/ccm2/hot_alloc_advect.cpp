// BAD fixture (sema-hot-alloc): advect looks clean, but its same-TU
// helper builds a std::string per departure point. The one-level inline
// walk must attribute the allocation back to the hot root. One finding.
#include <string>

namespace ccm2 {
class Slt {
 public:
  void advect(int points) {
    for (int p = 0; p < points; ++p) label_point(p);
  }

 private:
  void label_point(int p) {
    last_label_ = std::string("pt-") + std::to_string(p);
  }
  std::string last_label_;
};
}  // namespace ccm2
