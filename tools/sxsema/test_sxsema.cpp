// Unit tests for the sxsema rule engine, SARIF emitter and baseline
// ratchet. These run on every host — no libclang needed — by constructing
// Model values by hand that mirror the fixture sources in testdata/ (the
// end-to-end battery over the real fixtures runs as lint_sema_fixtures
// when libclang is available).

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "rules.hpp"
#include "sarif.hpp"

namespace {

using ncar::sxsema::CallSite;
using ncar::sxsema::Finding;
using ncar::sxsema::FuncOp;
using ncar::sxsema::Function;
using ncar::sxsema::Model;
using ncar::sxsema::OpKind;
using ncar::sxsema::SourceLoc;

Function make_fn(const std::string& file, int line, const std::string& name,
                 const std::string& qualified,
                 const std::string& result_type = "void") {
  Function f;
  f.name = name;
  f.qualified = qualified;
  f.result_type = result_type;
  f.loc = {file, line, 1};
  f.tu = file;
  f.is_public = true;
  f.is_definition = true;
  return f;
}

FuncOp op(OpKind kind, const std::string& file, int line,
          const std::string& detail = "", const std::string& aux = "") {
  return {kind, {file, line, 3}, detail, aux};
}

// --- sema-unit-leak --------------------------------------------------------
// Mirrors testdata/bad/src/sxs/unit_leak_return.cpp.

TEST(UnitLeakRule, FlagsPublicRawReturnUnwrap) {
  Model m;
  Function f = make_fn("src/sxs/unit_leak_return.cpp", 21, "elapsed_seconds",
                       "ncar::StepTimer::elapsed_seconds", "double");
  f.ops.push_back(op(OpKind::ReturnRaw, f.loc.file, 21, "Seconds"));
  m.functions.push_back(f);

  const auto found = ncar::sxsema::check_unit_leak(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "sema-unit-leak");
  EXPECT_EQ(found[0].file, "src/sxs/unit_leak_return.cpp");
  EXPECT_EQ(found[0].symbol, "ncar::StepTimer::elapsed_seconds");
  EXPECT_EQ(found[0].message,
            "public function 'ncar::StepTimer::elapsed_seconds' returns raw "
            "double stripped from a ncar::Quantity<Seconds> via .value(); "
            "return the typed quantity instead");
}

TEST(UnitLeakRule, IgnoresPrivateRawReturn) {
  // Mirrors Stage::busy_raw in testdata/good/src/sxs/unit_ok.cpp.
  Model m;
  Function f = make_fn("src/sxs/unit_ok.cpp", 35, "busy_raw",
                       "ncar::Stage::busy_raw", "double");
  f.is_public = false;
  f.ops.push_back(op(OpKind::ReturnRaw, f.loc.file, 35, "Cycles"));
  m.functions.push_back(f);
  EXPECT_TRUE(ncar::sxsema::check_unit_leak(m).empty());
}

TEST(UnitLeakRule, IgnoresTypedReturn) {
  // A function that unwraps internally but returns a typed Quantity.
  Model m;
  Function f = make_fn("src/machines/scaled.cpp", 9, "scaled",
                       "ncar::scaled", "ncar::Quantity<ncar::dim::Cycles>");
  f.ops.push_back(op(OpKind::ReturnRaw, f.loc.file, 9, "Cycles"));
  m.functions.push_back(f);
  EXPECT_TRUE(ncar::sxsema::check_unit_leak(m).empty());
}

TEST(UnitLeakRule, FlagsCrossClockRewrap) {
  // Mirrors hasty_seconds in testdata/bad/src/machines/unit_leak_rewrap.cpp.
  Model m;
  Function f = make_fn("src/machines/unit_leak_rewrap.cpp", 23,
                       "hasty_seconds", "ncar::hasty_seconds",
                       "ncar::Quantity<ncar::dim::Seconds>");
  f.ops.push_back(
      op(OpKind::QuantityWrap, f.loc.file, 24, "Seconds", "Cycles"));
  m.functions.push_back(f);

  const auto found = ncar::sxsema::check_unit_leak(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "sema-unit-leak");
  EXPECT_EQ(found[0].message,
            "re-wraps a Cycles value as Seconds outside "
            "MachineConfig::to_seconds/to_cycles; convert through the "
            "machine clock");
}

TEST(UnitLeakRule, ExemptsMachineConfigConversions) {
  // MachineConfig::to_seconds/to_cycles are the blessed clock crossings.
  Model m;
  Function f = make_fn("src/machines/machine_config.hpp", 101, "to_seconds",
                       "ncar::MachineConfig::to_seconds",
                       "ncar::Quantity<ncar::dim::Seconds>");
  f.ops.push_back(
      op(OpKind::QuantityWrap, f.loc.file, 102, "Seconds", "Cycles"));
  m.functions.push_back(f);
  EXPECT_TRUE(ncar::sxsema::check_unit_leak(m).empty());
}

TEST(UnitLeakRule, IgnoresNonClockRewraps) {
  // Bytes -> BytesPerSec derivations (e.g. bandwidth) are legitimate.
  Model m;
  Function f = make_fn("src/machines/machine_config.hpp", 80,
                       "xmu_bandwidth", "ncar::MachineConfig::xmu_bandwidth",
                       "ncar::Quantity<ncar::dim::BytesPerSec>");
  f.ops.push_back(
      op(OpKind::QuantityWrap, f.loc.file, 81, "BytesPerSec", "Bytes"));
  m.functions.push_back(f);
  EXPECT_TRUE(ncar::sxsema::check_unit_leak(m).empty());
}

TEST(UnitLeakRule, IgnoresFilesOutsideUnitScope) {
  Model m;
  Function f = make_fn("src/trace/collector.cpp", 5, "span_seconds",
                       "trace::span_seconds", "double");
  f.ops.push_back(op(OpKind::ReturnRaw, f.loc.file, 5, "Seconds"));
  m.functions.push_back(f);
  EXPECT_TRUE(ncar::sxsema::check_unit_leak(m).empty());
}

// --- sema-nondet -----------------------------------------------------------

TEST(NondetRule, FlagsBannedCall) {
  // Mirrors testdata/bad/src/des/nondet_clock.cpp.
  Model m;
  Function f = make_fn("src/des/nondet_clock.cpp", 11, "wall_seed",
                       "des::wall_seed", "double");
  f.ops.push_back(op(OpKind::BannedCall, f.loc.file, 12, "time"));
  m.functions.push_back(f);

  const auto found = ncar::sxsema::check_nondet(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "sema-nondet");
  EXPECT_EQ(found[0].message,
            "call to time is nondeterministic; simulated time and "
            "randomness must come from the model");
}

TEST(NondetRule, FlagsRngEngineOutsideDesLayer) {
  // Mirrors testdata/bad/src/machines/nondet_rng.cpp.
  Model m;
  Function f = make_fn("src/machines/nondet_rng.cpp", 8, "noisy_latency",
                       "machines::noisy_latency", "unsigned int");
  f.ops.push_back(op(OpKind::RngEngine, f.loc.file, 9, "std::mt19937_64"));
  m.functions.push_back(f);

  const auto found = ncar::sxsema::check_nondet(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].message,
            "std random engine std::mt19937_64 outside des::RngStream; "
            "draw from a named des RNG stream instead");
}

TEST(NondetRule, ExemptsDesRngLayer) {
  // Mirrors testdata/good/src/des/rng_stream.cpp.
  Model m;
  Function f = make_fn("src/des/rng_stream.cpp", 10, "RngStream",
                       "des::RngStream::RngStream");
  f.ops.push_back(op(OpKind::RngEngine, f.loc.file, 16, "std::mt19937_64"));
  m.functions.push_back(f);
  EXPECT_TRUE(ncar::sxsema::check_nondet(m).empty());
}

TEST(NondetRule, FlagsUnorderedIteration) {
  // Mirrors testdata/bad/src/sxs/nondet_unordered.cpp.
  Model m;
  Function f = make_fn("src/sxs/nondet_unordered.cpp", 9, "total",
                       "sxs::BankBook::total", "double");
  f.ops.push_back(
      op(OpKind::UnorderedIter, f.loc.file, 11, "std::unordered_map"));
  m.functions.push_back(f);

  const auto found = ncar::sxsema::check_nondet(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].message,
            "iteration over std::unordered_map has nondeterministic order; "
            "charged or serialized state must not depend on it");
}

TEST(NondetRule, IgnoresFilesOutsideSrc) {
  Model m;
  Function f = make_fn("tools/sweep/main.cpp", 30, "stamp", "stamp", "long");
  f.ops.push_back(op(OpKind::BannedCall, f.loc.file, 31, "time"));
  m.functions.push_back(f);
  EXPECT_TRUE(ncar::sxsema::check_nondet(m).empty());
}

// --- sema-hot-alloc --------------------------------------------------------

TEST(HotAllocRule, FlagsDirectAllocationInHotRoot) {
  // Mirrors testdata/bad/src/sxs/hot_alloc_direct.cpp.
  Model m;
  Function f = make_fn("src/sxs/hot_alloc_direct.cpp", 8, "access_range",
                       "sxs::CacheSim::access_range");
  f.ops.push_back(op(OpKind::ContainerGrowth, f.loc.file, 9, "push_back",
                     "std::vector"));
  f.ops.push_back(op(OpKind::NewExpr, f.loc.file, 10));
  m.functions.push_back(f);

  const auto found = ncar::sxsema::check_hot_alloc(m);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].message,
            "hot path 'sxs::CacheSim::access_range' performs container "
            "growth (push_back on std::vector); charge paths must be "
            "allocation-free");
  EXPECT_EQ(found[1].message,
            "hot path 'sxs::CacheSim::access_range' performs a "
            "new-expression; charge paths must be allocation-free");
}

TEST(HotAllocRule, FlagsAllocationOneLevelDown) {
  // Mirrors testdata/bad/src/iosim/hot_alloc_via.cpp.
  Model m;
  Function root = make_fn("src/iosim/hot_alloc_via.cpp", 9, "charge_step",
                          "iosim::DiskModel::charge_step");
  CallSite call;
  call.callee = "note_event";
  call.callee_qualified = "iosim::DiskModel::note_event";
  call.loc = {root.loc.file, 9, 30};
  root.calls.push_back(call);

  Function callee = make_fn("src/iosim/hot_alloc_via.cpp", 12, "note_event",
                            "iosim::DiskModel::note_event");
  callee.is_public = false;
  callee.ops.push_back(op(OpKind::ContainerGrowth, callee.loc.file, 12,
                          "push_back", "std::vector"));
  m.functions.push_back(root);
  m.functions.push_back(callee);

  const auto found = ncar::sxsema::check_hot_alloc(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].message,
            "hot path 'iosim::DiskModel::charge_step' reaches container "
            "growth (push_back on std::vector) via "
            "'iosim::DiskModel::note_event'; charge paths must be "
            "allocation-free");
}

TEST(HotAllocRule, IgnoresCalleesDefinedInOtherTus) {
  // The Collector::span case: charge_cycles calls a function whose
  // definition lives in another TU — it is not folded into this root.
  Model m;
  Function root = make_fn("src/sxs/cpu.cpp", 40, "charge_cycles",
                          "ncar::sxs::Cpu::charge_cycles");
  CallSite call;
  call.callee = "span";
  call.callee_qualified = "trace::Collector::span";
  call.loc = {root.loc.file, 41, 5};
  root.calls.push_back(call);

  Function callee = make_fn("src/trace/collector.cpp", 20, "span",
                            "trace::Collector::span");
  callee.ops.push_back(op(OpKind::ContainerGrowth, callee.loc.file, 22,
                          "push_back", "std::vector"));
  m.functions.push_back(root);
  m.functions.push_back(callee);
  EXPECT_TRUE(ncar::sxsema::check_hot_alloc(m).empty());
}

TEST(HotAllocRule, IgnoresColdFunctions) {
  // Mirrors configure() in testdata/good/src/sxs/hot_ok.cpp.
  Model m;
  Function f = make_fn("src/sxs/hot_ok.cpp", 9, "configure",
                       "sxs::CacheSim::configure");
  f.ops.push_back(
      op(OpKind::ContainerGrowth, f.loc.file, 10, "resize", "std::vector"));
  m.functions.push_back(f);
  EXPECT_TRUE(ncar::sxsema::check_hot_alloc(m).empty());
}

TEST(HotAllocRule, FlagsNumericStepRoots) {
  // Mirrors testdata/bad/src/ocean/hot_alloc_step.cpp: `step` is a hot
  // root since the zero-allocation hot-path work, so a per-step scratch
  // vector is a finding.
  Model m;
  Function f = make_fn("src/ocean/hot_alloc_step.cpp", 10, "step",
                       "ocean::BasinModel::step");
  f.ops.push_back(op(OpKind::NewExpr, f.loc.file, 11));
  m.functions.push_back(f);

  const auto found = ncar::sxsema::check_hot_alloc(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "sema-hot-alloc");
  EXPECT_EQ(found[0].message,
            "hot path 'ocean::BasinModel::step' performs a "
            "new-expression; charge paths must be allocation-free");
}

TEST(HotAllocRule, FlagsAllocationReachedFromAdvect) {
  // `advect` reaching std::string construction one level down in the
  // same TU is folded into the root, like charge_step call graphs.
  Model m;
  Function root = make_fn("src/ccm2/hot_alloc_advect.cpp", 14, "advect",
                          "ccm2::Slt::advect");
  CallSite call;
  call.callee = "label_point";
  call.callee_qualified = "ccm2::Slt::label_point";
  call.loc = {root.loc.file, 15, 7};
  root.calls.push_back(call);

  Function callee = make_fn("src/ccm2/hot_alloc_advect.cpp", 20,
                            "label_point", "ccm2::Slt::label_point");
  callee.is_public = false;
  callee.ops.push_back(op(OpKind::StringMake, callee.loc.file, 21));
  m.functions.push_back(root);
  m.functions.push_back(callee);

  const auto found = ncar::sxsema::check_hot_alloc(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].message,
            "hot path 'ccm2::Slt::advect' reaches std::string construction "
            "via 'ccm2::Slt::label_point'; charge paths must be "
            "allocation-free");
}

TEST(HotAllocRule, WorkspaceReusingStepIsClean) {
  // Mirrors testdata/good/src/ocean/step_ok.cpp: a step() that only
  // writes through preallocated workspace storage is not flagged even
  // though the cold reset() path allocates.
  Model m;
  Function cold = make_fn("src/ocean/step_ok.cpp", 9, "reset",
                          "ocean::BasinModel::reset");
  cold.ops.push_back(
      op(OpKind::ContainerGrowth, cold.loc.file, 10, "assign", "std::vector"));
  Function hot = make_fn("src/ocean/step_ok.cpp", 13, "step",
                         "ocean::BasinModel::step");
  m.functions.push_back(cold);
  m.functions.push_back(hot);
  EXPECT_TRUE(ncar::sxsema::check_hot_alloc(m).empty());
}

// --- sema-untagged-charge --------------------------------------------------

TEST(UntaggedChargeRule, FlagsOverloadWithoutCategory) {
  // Mirrors testdata/bad/src/sxs/untagged_overload.cpp.
  Model m;
  Function f = make_fn("src/sxs/untagged_overload.cpp", 11, "charge_cycles",
                       "sxs::Pipe::charge_cycles");
  f.param_types = {"double"};
  m.functions.push_back(f);

  const auto found = ncar::sxsema::check_untagged_charge(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "sema-untagged-charge");
  EXPECT_EQ(found[0].message,
            "'sxs::Pipe::charge_cycles' overload has no trace::Category "
            "parameter; charge entry points must carry a category");
}

TEST(UntaggedChargeRule, AcceptsOverloadWithCategory) {
  Model m;
  Function f = make_fn("src/sxs/tagged_ok.cpp", 11, "charge_cycles",
                       "sxs::Cpu::charge_cycles");
  f.param_types = {"double", "trace::Category"};
  m.functions.push_back(f);
  EXPECT_TRUE(ncar::sxsema::check_untagged_charge(m).empty());
}

TEST(UntaggedChargeRule, FlagsCallWithoutWrittenCategory) {
  // Mirrors Xmu::transfer in testdata/bad/src/iosim/untagged_call.cpp:
  // the defaulted Category never appears among the *written* arguments.
  Model m;
  Function caller = make_fn("src/iosim/untagged_call.cpp", 22, "transfer",
                            "iosim::Xmu::transfer");
  CallSite call;
  call.callee = "charge_cycles";
  call.callee_qualified = "iosim::Cpu::charge_cycles";
  call.loc = {caller.loc.file, 23, 5};
  call.arg_types = {"double"};
  caller.calls.push_back(call);
  m.functions.push_back(caller);

  const auto found = ncar::sxsema::check_untagged_charge(m);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].message,
            "charge_cycles without an explicit trace::Category argument; "
            "uncategorised charges land in the Other attribution bucket");
}

TEST(UntaggedChargeRule, AcceptsExplicitCategoryArgument) {
  Model m;
  Function caller = make_fn("src/iosim/untagged_call.cpp", 25,
                            "transfer_tagged", "iosim::Xmu::transfer_tagged");
  CallSite call;
  call.callee = "charge_cycles";
  call.callee_qualified = "iosim::Cpu::charge_cycles";
  call.loc = {caller.loc.file, 26, 5};
  call.arg_types = {"double", "trace::Category"};
  caller.calls.push_back(call);
  m.functions.push_back(caller);
  EXPECT_TRUE(ncar::sxsema::check_untagged_charge(m).empty());
}

TEST(UntaggedChargeRule, IgnoresCallsOutsideChargeScope) {
  // The charge-tagging discipline covers src/sxs + src/iosim only.
  Model m;
  Function caller = make_fn("src/machines/sweep.cpp", 14, "run",
                            "machines::run");
  CallSite call;
  call.callee = "charge_cycles";
  call.callee_qualified = "machines::Probe::charge_cycles";
  call.loc = {caller.loc.file, 15, 5};
  call.arg_types = {"double"};
  caller.calls.push_back(call);
  m.functions.push_back(caller);
  EXPECT_TRUE(ncar::sxsema::check_untagged_charge(m).empty());
}

// --- ordering, dedupe, fingerprints ----------------------------------------

Finding finding(const std::string& rule, const std::string& file, int line,
                int col, const std::string& symbol,
                const std::string& message) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.col = col;
  f.symbol = symbol;
  f.message = message;
  return f;
}

TEST(Ordering, SortsByFileLineRule) {
  std::vector<Finding> v = {
      finding("sema-nondet", "src/b.cpp", 3, 1, "f", "m1"),
      finding("sema-unit-leak", "src/a.cpp", 9, 1, "g", "m2"),
      finding("sema-hot-alloc", "src/a.cpp", 9, 1, "g", "m3"),
      finding("sema-nondet", "src/a.cpp", 2, 1, "h", "m4"),
  };
  ncar::sxsema::sort_and_dedupe(v);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0].file, "src/a.cpp");
  EXPECT_EQ(v[0].line, 2);
  EXPECT_EQ(v[1].rule, "sema-hot-alloc");  // same file+line: rule order
  EXPECT_EQ(v[2].rule, "sema-unit-leak");
  EXPECT_EQ(v[3].file, "src/b.cpp");
}

TEST(Ordering, DedupesRepeatFindingsOnSameToken) {
  // The same header parsed in several TUs produces identical findings.
  std::vector<Finding> v = {
      finding("sema-nondet", "src/a.hpp", 7, 3, "f", "m"),
      finding("sema-nondet", "src/a.hpp", 7, 3, "f", "m"),
      finding("sema-nondet", "src/a.hpp", 7, 3, "f", "m"),
  };
  ncar::sxsema::sort_and_dedupe(v);
  EXPECT_EQ(v.size(), 1u);
}

TEST(Fingerprint, LineInsensitive) {
  const Finding a =
      finding("sema-nondet", "src/a.cpp", 10, 3, "ncar::f", "msg");
  const Finding b =
      finding("sema-nondet", "src/a.cpp", 99, 7, "ncar::f", "msg");
  EXPECT_EQ(ncar::sxsema::fingerprint(a), ncar::sxsema::fingerprint(b));
  const Finding c =
      finding("sema-nondet", "src/a.cpp", 10, 3, "ncar::f", "other");
  EXPECT_NE(ncar::sxsema::fingerprint(a), ncar::sxsema::fingerprint(c));
}

TEST(Text, FormatsFileLineColRuleMessage) {
  const Finding f =
      finding("sema-unit-leak", "src/sxs/cpu.cpp", 12, 5, "s", "leaky");
  EXPECT_EQ(ncar::sxsema::to_text(f),
            "src/sxs/cpu.cpp:12:5: [sema-unit-leak] leaky");
}

// --- SARIF + baseline ratchet ----------------------------------------------

TEST(Sarif, DeterministicAndWellFormed) {
  std::vector<Finding> v = {
      finding("sema-nondet", "src/a.cpp", 3, 1, "f", "call to time ..."),
      finding("sema-unit-leak", "src/b.cpp", 9, 2, "g", "re-\"wraps\""),
  };
  const std::string once = ncar::sxsema::write_sarif(v);
  const std::string twice = ncar::sxsema::write_sarif(v);
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(once.find("json.schemastore.org/sarif-2.1.0.json"),
            std::string::npos);
  EXPECT_NE(once.find("\"name\": \"sxsema\""), std::string::npos);
  EXPECT_NE(once.find("sxsema/v1"), std::string::npos);
}

TEST(Sarif, BaselineRoundTrip) {
  std::vector<Finding> v = {
      finding("sema-hot-alloc", "src/a.cpp", 3, 1, "f", "performs x"),
      finding("sema-nondet", "src/b.cpp", 9, 2, "g", "iterates y"),
  };
  const std::string doc = ncar::sxsema::write_sarif(v);

  std::vector<std::string> prints;
  ASSERT_TRUE(ncar::sxsema::read_baseline_fingerprints(doc, prints));
  ASSERT_EQ(prints.size(), 2u);
  EXPECT_EQ(prints[0], ncar::sxsema::fingerprint(v[0]));
  EXPECT_EQ(prints[1], ncar::sxsema::fingerprint(v[1]));

  // Suppressing against the freshly written baseline leaves nothing, even
  // after the findings move to other lines (line-insensitive ratchet).
  v[0].line = 77;
  v[1].line = 78;
  EXPECT_TRUE(ncar::sxsema::suppress_baselined(v, prints).empty());
}

TEST(Sarif, PartialSuppressionKeepsFreshFindings) {
  std::vector<Finding> v = {
      finding("sema-hot-alloc", "src/a.cpp", 3, 1, "f", "performs x"),
      finding("sema-nondet", "src/b.cpp", 9, 2, "g", "iterates y"),
  };
  const std::vector<std::string> baseline = {ncar::sxsema::fingerprint(v[0])};
  const auto fresh = ncar::sxsema::suppress_baselined(v, baseline);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rule, "sema-nondet");
}

TEST(Sarif, EmptyResultsAreValid) {
  const std::string doc = ncar::sxsema::write_sarif({});
  std::vector<std::string> prints;
  ASSERT_TRUE(ncar::sxsema::read_baseline_fingerprints(doc, prints));
  EXPECT_TRUE(prints.empty());
}

TEST(Sarif, MalformedBaselineIsRejected) {
  std::vector<std::string> prints;
  EXPECT_FALSE(ncar::sxsema::read_baseline_fingerprints("not json", prints));
  EXPECT_FALSE(ncar::sxsema::read_baseline_fingerprints("{}", prints));
  EXPECT_FALSE(ncar::sxsema::read_baseline_fingerprints(
      "{\"runs\": [{\"results\": [{\"ruleId\": \"x\"}]}]}", prints));
}

TEST(Sarif, CommittedBaselineIsCleanAndParses) {
  // The repo invariant: tools/sxsema/baseline.sarif is the empty ratchet.
  std::ifstream in(std::string(SXSEMA_DIR) + "/baseline.sarif");
  ASSERT_TRUE(in.good()) << "missing tools/sxsema/baseline.sarif";
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<std::string> prints;
  ASSERT_TRUE(ncar::sxsema::read_baseline_fingerprints(buf.str(), prints));
  EXPECT_TRUE(prints.empty())
      << "baseline.sarif carries grandfathered findings; fix or justify";
  // Byte-stable emitter: the committed file is exactly write_sarif({}).
  EXPECT_EQ(buf.str(), ncar::sxsema::write_sarif({}));
}

TEST(RunRules, ConcatenatesAllFamiliesSortedAndDeduped) {
  Model m;
  Function leak = make_fn("src/sxs/b.cpp", 12, "elapsed_seconds",
                          "sxs::T::elapsed_seconds", "double");
  leak.ops.push_back(op(OpKind::ReturnRaw, leak.loc.file, 12, "Seconds"));
  Function nondet = make_fn("src/sxs/a.cpp", 4, "seed", "sxs::seed", "long");
  nondet.ops.push_back(op(OpKind::BannedCall, nondet.loc.file, 5, "time"));
  m.functions.push_back(leak);
  m.functions.push_back(nondet);

  const auto all = ncar::sxsema::run_rules(m);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].file, "src/sxs/a.cpp");  // file order, not rule order
  EXPECT_EQ(all[0].rule, "sema-nondet");
  EXPECT_EQ(all[1].file, "src/sxs/b.cpp");
  EXPECT_EQ(all[1].rule, "sema-unit-leak");
}

}  // namespace
