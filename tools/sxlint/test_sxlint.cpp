#include "sxlint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>

// SXLINT_TESTDATA_DIR is provided by CMake and points at
// tools/sxlint/testdata in the source tree.

namespace {

using ncar::sxlint::Finding;

std::filesystem::path testdata(const char* which) {
  return std::filesystem::path(SXLINT_TESTDATA_DIR) / which;
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

bool mentions_file(const std::vector<Finding>& findings,
                   const std::string& filename) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.file.filename() == filename;
  });
}

TEST(SxlintStrip, RemovesCommentsAndStringsKeepsLines) {
  const std::string src =
      "int a; // time(0)\n"
      "/* std::rand()\n"
      "   more */ int b;\n"
      "const char* s = \"gettimeofday\";\n";
  const std::string stripped = ncar::sxlint::strip_comments_and_strings(src);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("gettimeofday"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(SxlintStrip, HandlesEscapedQuotes) {
  const std::string src = "const char* s = \"a\\\"rand(\\\"b\"; int c;\n";
  const std::string stripped = ncar::sxlint::strip_comments_and_strings(src);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int c;"), std::string::npos);
}

TEST(SxlintBad, BenchWithoutReporterIsFlagged) {
  const auto findings = ncar::sxlint::check_bench_reporter(testdata("bad"));
  EXPECT_EQ(count_rule(findings, "bench-reporter"), 1);
  EXPECT_TRUE(mentions_file(findings, "rogue_bench.cpp"));
}

TEST(SxlintBad, NondeterministicCallsAreFlagged) {
  const auto findings = ncar::sxlint::check_nondeterminism(testdata("bad"));
  // srand, time(), rand() in model_nondet.cpp, plus clock_gettime and
  // time() in the streaming-sink fixture trace/stream/sink_wallclock.cpp.
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 5);
  EXPECT_TRUE(mentions_file(findings, "model_nondet.cpp"));
  EXPECT_TRUE(mentions_file(findings, "sink_wallclock.cpp"));
}

TEST(SxlintGood, StreamSinkOnModelTimePasses) {
  // trace/stream/sink_clean.cpp keeps every timestamp in model time;
  // "time"/"rand" appear only in comments, strings, and longer tokens.
  const auto findings = ncar::sxlint::check_nondeterminism(testdata("good"));
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 0);
}

TEST(SxlintBad, PrintingModelCodeIsFlagged) {
  const auto findings = ncar::sxlint::check_stdout(testdata("bad"));
  EXPECT_EQ(count_rule(findings, "no-stdout"), 1);
  EXPECT_TRUE(mentions_file(findings, "model_prints.cpp"));
}

TEST(SxlintBad, IncludeGuardHeaderIsFlagged) {
  const auto findings = ncar::sxlint::check_pragma_once(testdata("bad"));
  EXPECT_EQ(count_rule(findings, "pragma-once"), 1);
  EXPECT_TRUE(mentions_file(findings, "legacy_guard.hpp"));
}

TEST(SxlintBad, NakedUnitParametersAreFlagged) {
  const auto findings = ncar::sxlint::check_typed_units(testdata("bad"));
  // `double bytes`, `double timeout_seconds` and `double flops` in
  // sxs/naked_units.hpp plus the public `double max_seconds` in
  // machines/public_naked_units.hpp — its private `double seconds` is
  // deliberately NOT counted — plus, under the widened iosim scope,
  // `double bytes` and `double stall_seconds` in iosim/io_naked_units.hpp.
  EXPECT_EQ(count_rule(findings, "typed-units"), 6);
  EXPECT_TRUE(mentions_file(findings, "naked_units.hpp"));
  EXPECT_TRUE(mentions_file(findings, "public_naked_units.hpp"));
  EXPECT_TRUE(mentions_file(findings, "io_naked_units.hpp"));
}

TEST(SxlintGood, TypedIosimHeaderPassesWidenedScope) {
  // iosim/io_typed.hpp keeps raw doubles private or at depth 0; the
  // widened typed-units sweep must leave it alone.
  const auto findings = ncar::sxlint::check_typed_units(testdata("good"));
  EXPECT_EQ(count_rule(findings, "typed-units"), 0);
}

TEST(SxlintGood, PrivateSectionNakedUnitsAreAllowed) {
  // machines/typed_catalog.hpp keeps raw doubles in its private section,
  // has a depth-0 `double seconds()` method name, struct fields, and an
  // `enum class` — none of which may trip the access tracker.
  const auto findings = ncar::sxlint::check_typed_units(testdata("good"));
  EXPECT_EQ(count_rule(findings, "typed-units"), 0);
}

TEST(SxlintBad, UncategorisedChargesAreFlagged) {
  const auto findings = ncar::sxlint::check_trace_category(testdata("bad"));
  // charge_cycles and charge_seconds in uncategorised_charge.cpp.
  EXPECT_EQ(count_rule(findings, "trace-category"), 2);
  EXPECT_TRUE(mentions_file(findings, "uncategorised_charge.cpp"));
}

TEST(SxlintGood, CategorisedAndForwardedChargesPass) {
  const auto findings = ncar::sxlint::check_trace_category(testdata("good"));
  EXPECT_EQ(count_rule(findings, "trace-category"), 0);
}

TEST(SxlintBad, WholeTreeAggregatesEveryRule) {
  const auto findings = ncar::sxlint::lint_tree(testdata("bad"));
  EXPECT_GE(count_rule(findings, "bench-reporter"), 1);
  EXPECT_GE(count_rule(findings, "no-nondeterminism"), 1);
  EXPECT_GE(count_rule(findings, "no-stdout"), 1);
  EXPECT_GE(count_rule(findings, "pragma-once"), 1);
  EXPECT_GE(count_rule(findings, "typed-units"), 1);
  EXPECT_GE(count_rule(findings, "trace-category"), 1);
}

TEST(SxlintOrdering, FindingsAreSortedByFileLineRule) {
  const auto findings = ncar::sxlint::lint_tree(testdata("bad"));
  ASSERT_GE(findings.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
        if (a.file != b.file) return a.file < b.file;
        if (a.line != b.line) return a.line < b.line;
        return a.rule < b.rule;
      }));
}

TEST(SxlintOrdering, SortAndDedupeDropsRepeatsOnSameToken) {
  Finding f;
  f.rule = "typed-units";
  f.file = "src/sxs/a.hpp";
  f.line = 7;
  f.message = "m";
  Finding later = f;
  later.line = 3;
  std::vector<Finding> v = {f, f, later, f};
  ncar::sxlint::sort_and_dedupe(v);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].line, 3);  // sorted: earlier line first
  EXPECT_EQ(v[1].line, 7);  // three identical findings collapse to one
}

TEST(SxlintGood, CleanTreeHasNoFindings) {
  const auto findings = ncar::sxlint::lint_tree(testdata("good"));
  for (const auto& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
}

TEST(SxlintGood, MethodNamedSecondsAtDepthZeroIsAllowed) {
  // good/src/sxs/typed.hpp declares `double seconds() const;` — a method
  // *name*, not a parameter; the paren-depth heuristic must not fire.
  const auto findings = ncar::sxlint::check_typed_units(testdata("good"));
  EXPECT_EQ(count_rule(findings, "typed-units"), 0);
}

TEST(SxlintGood, MissingSubtreesAreSkipped) {
  // A tree with no bench/ or tests/ lints clean rather than erroring.
  const auto findings =
      ncar::sxlint::lint_tree(testdata("good") / "src" / "sxs");
  EXPECT_TRUE(findings.empty());
}

}  // namespace
