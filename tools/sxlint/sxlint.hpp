#pragma once
// sxlint: project-specific static analysis for the SX-4 model codebase.
//
// A deliberately small, dependency-free analyzer (no libclang): it strips
// comments and string literals, then applies exact-token and paren-depth
// heuristics. That is enough to enforce the handful of project invariants
// that generic tools cannot know about:
//
//   bench-reporter      every bench/ main must route its numbers through the
//                       BenchReporter harness (so the regression gate sees
//                       them); a stray printf-style bench silently escapes
//                       baseline checking.
//   no-nondeterminism   model code (src/) must not read wall clocks or
//                       global RNG state: std::rand, srand, time(),
//                       gettimeofday, clock_gettime, std::random_device.
//                       Simulated time must come from the model itself.
//   no-stdout           model code must not print; presentation lives in
//                       bench/ and examples/.
//   pragma-once         every header uses #pragma once.
//   typed-units         src/sxs, src/machines and src/iosim headers must not
//                       take naked `double seconds` / `double bytes`
//                       parameters in publicly visible declarations — use
//                       ncar::Seconds / ncar::Bytes (common/quantity.hpp).
//                       A brace-stack access tracker (class opens private,
//                       struct opens public, labels flip) lets private
//                       helpers keep raw doubles.
//   trace-category      charge_cycles / charge_seconds calls in src/sxs and
//                       src/iosim must pass a trace::Category — an
//                       uncategorised charge lands in the Other bucket of
//                       every attribution table and degrades the paper-style
//                       cycle breakdowns.
//
// Each finding carries the rule name, file, line, and message. main() prints
// them `file:line: [rule] message` and exits non-zero on any finding.
// lint_tree output is strictly ordered by (file, line, rule) with repeat
// findings on the same token deduplicated, so runs diff cleanly.

#include <filesystem>
#include <string>
#include <vector>

namespace ncar::sxlint {

struct Finding {
  std::string rule;
  std::filesystem::path file;
  int line = 0;
  std::string message;
};

/// Replace comments and string/char literal contents with spaces, keeping
/// newlines so line numbers survive. Exposed for tests.
std::string strip_comments_and_strings(const std::string& source);

/// Sort findings by (file, line, rule, message) and drop exact repeats on
/// the same token. Exposed for tests; lint_tree applies it to its result.
void sort_and_dedupe(std::vector<Finding>& findings);

/// Run every rule over the repository rooted at `root` (the directory that
/// contains src/, bench/, tests/). Paths that do not exist are skipped, so
/// the linter also works on partial fixture trees. The result is ordered
/// and deduplicated (see sort_and_dedupe).
std::vector<Finding> lint_tree(const std::filesystem::path& root);

/// Individual rules, each scanning the files it cares about under `root`.
std::vector<Finding> check_bench_reporter(const std::filesystem::path& root);
std::vector<Finding> check_nondeterminism(const std::filesystem::path& root);
std::vector<Finding> check_stdout(const std::filesystem::path& root);
std::vector<Finding> check_pragma_once(const std::filesystem::path& root);
std::vector<Finding> check_typed_units(const std::filesystem::path& root);
std::vector<Finding> check_trace_category(const std::filesystem::path& root);

}  // namespace ncar::sxlint
