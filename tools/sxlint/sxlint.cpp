#include "sxlint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <tuple>

namespace ncar::sxlint {

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() + static_cast<long>(pos),
                                         '\n'));
}

/// Position of the next occurrence of identifier `token` with identifier
/// boundaries on both sides, starting at `from`; npos if none.
std::size_t find_token(const std::string& text, const std::string& token,
                       std::size_t from) {
  for (std::size_t i = text.find(token, from); i != std::string::npos;
       i = text.find(token, i + 1)) {
    const bool left_ok = i == 0 || !ident_char(text[i - 1]);
    const std::size_t end = i + token.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return i;
  }
  return std::string::npos;
}

bool has_token(const std::string& text, const std::string& token) {
  return find_token(text, token, 0) != std::string::npos;
}

/// True when token at `pos` (already boundary-checked) is a call: the next
/// non-space character is '('. Catches `time(0)` and `std::time(nullptr)`
/// without firing on variables that merely *contain* the name.
bool is_call(const std::string& text, std::size_t pos,
             std::size_t token_len) {
  std::size_t i = pos + token_len;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  return i < text.size() && text[i] == '(';
}

bool in_testdata(const fs::path& p, const fs::path& scan_root) {
  // Only components *below* the scan root count: linting a repo skips its
  // fixture trees, while pointing the linter AT a fixture tree still works.
  std::error_code ec;
  const fs::path rel = fs::relative(p, scan_root, ec);
  if (ec) return false;
  for (const auto& part : rel) {
    if (part == "testdata") return true;
  }
  return false;
}

std::vector<fs::path> collect(const fs::path& dir,
                              const std::string& extension) {
  std::vector<fs::path> out;
  if (!fs::is_directory(dir)) return out;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    // Lint fixtures contain deliberate violations; never lint them as
    // project sources.
    if (entry.is_regular_file() && entry.path().extension() == extension &&
        !in_testdata(entry.path(), dir)) {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& source) {
  enum class State { Code, LineComment, BlockComment, String, Char };
  std::string out = source;
  State state = State::Code;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::String;
        } else if (c == '\'') {
          state = State::Char;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Code;
        } else {
          out[i] = ' ';
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::String:
      case State::Char: {
        const char quote = state == State::String ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < source.size() && source[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == quote) {
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Finding> check_bench_reporter(const fs::path& root) {
  std::vector<Finding> findings;
  for (const auto& file : collect(root / "bench", ".cpp")) {
    // bench_gate is the baseline-diff tool, not a benchmark: it consumes
    // reporter output rather than producing it.
    if (file.filename() == "bench_gate.cpp") continue;
    const std::string text = strip_comments_and_strings(read_file(file));
    const std::size_t main_pos = find_token(text, "main", 0);
    if (main_pos == std::string::npos ||
        !is_call(text, main_pos, 4)) {
      continue;  // no main: harness library code, headers' companions, ...
    }
    if (!has_token(text, "BenchReporter")) {
      findings.push_back(
          {"bench-reporter", file, line_of(text, main_pos),
           "bench main must route results through the BenchReporter "
           "harness so the regression gate sees them"});
    }
  }
  return findings;
}

std::vector<Finding> check_nondeterminism(const fs::path& root) {
  // Model code must be deterministic: no wall clocks, no global RNG.
  // `time` is only flagged when called; the rest are banned outright.
  static const char* const kBannedIdents[] = {
      "srand", "gettimeofday", "clock_gettime", "random_device",
  };
  std::vector<Finding> findings;
  for (const auto& file : collect(root / "src", ".cpp")) {
    const std::string text = strip_comments_and_strings(read_file(file));
    for (const char* ident : kBannedIdents) {
      for (std::size_t pos = find_token(text, ident, 0);
           pos != std::string::npos; pos = find_token(text, ident, pos + 1)) {
        findings.push_back({"no-nondeterminism", file, line_of(text, pos),
                            std::string(ident) +
                                " is nondeterministic; model code must "
                                "derive time and randomness from the model"});
      }
    }
    for (const char* called : {"rand", "time"}) {
      const std::size_t len = std::string(called).size();
      for (std::size_t pos = find_token(text, called, 0);
           pos != std::string::npos;
           pos = find_token(text, called, pos + 1)) {
        if (!is_call(text, pos, len)) continue;
        findings.push_back({"no-nondeterminism", file, line_of(text, pos),
                            std::string(called) +
                                "() is nondeterministic; model code must "
                                "derive time and randomness from the model"});
      }
    }
  }
  return findings;
}

std::vector<Finding> check_stdout(const fs::path& root) {
  // Presentation belongs in bench/ and examples/; model code stays silent
  // (snprintf into buffers is fine — only stream/stdout writes are banned).
  static const char* const kBanned[] = {"printf", "puts", "cout"};
  std::vector<Finding> findings;
  for (const auto& file : collect(root / "src", ".cpp")) {
    const std::string text = strip_comments_and_strings(read_file(file));
    for (const char* ident : kBanned) {
      for (std::size_t pos = find_token(text, ident, 0);
           pos != std::string::npos; pos = find_token(text, ident, pos + 1)) {
        findings.push_back({"no-stdout", file, line_of(text, pos),
                            std::string(ident) +
                                " in model code; printing belongs in bench/ "
                                "or examples/"});
      }
    }
  }
  return findings;
}

std::vector<Finding> check_pragma_once(const fs::path& root) {
  std::vector<Finding> findings;
  for (const char* dir : {"src", "bench", "tests", "tools"}) {
    for (const auto& file : collect(root / dir, ".hpp")) {
      const std::string text = strip_comments_and_strings(read_file(file));
      // First non-blank content (comments already blanked) must be the guard.
      const std::size_t first = text.find_first_not_of(" \t\r\n");
      if (first != std::string::npos &&
          text.compare(first, 12, "#pragma once") == 0) {
        continue;
      }
      findings.push_back({"pragma-once", file, 1,
                          "header must start with #pragma once"});
    }
  }
  return findings;
}

std::vector<Finding> check_typed_units(const fs::path& root) {
  // In src/sxs and src/machines headers a *publicly visible* parameter
  // `double seconds` / `double bytes` / `double flops` (or a `_seconds` /
  // `_bytes` / `_flops` suffix) defeats the dimension system — it must be
  // ncar::Seconds / ncar::Bytes / ncar::Flops. Parameters are recognised
  // by paren depth > 0; struct fields and method *names* sit at depth 0.
  // A brace stack tracks access sections so private helpers may keep raw
  // doubles: `class` opens private, `struct` opens public, plain braces
  // (namespaces, function bodies) inherit, and `public:` / `private:` /
  // `protected:` labels flip the current scope.
  const auto is_banned_name = [](const std::string& name) {
    for (const char* suffix : {"seconds", "bytes", "flops"}) {
      const std::string s(suffix);
      if (name == s) return true;
      if (name.size() > s.size() + 1 &&
          name.compare(name.size() - s.size() - 1, s.size() + 1, "_" + s) ==
              0) {
        return true;
      }
    }
    return false;
  };
  std::vector<Finding> findings;
  for (const char* dir : {"sxs", "machines", "iosim"}) {
    for (const auto& file : collect(root / "src" / dir, ".hpp")) {
      const std::string text = strip_comments_and_strings(read_file(file));
      int depth = 0;
      std::string prev_token;
      bool adjacent = false;  // only whitespace between prev token and current
      std::vector<bool> is_public{true};  // file scope is public
      int pending = -1;  // access for the next '{': 1 public, 0 private
      for (std::size_t i = 0; i < text.size();) {
        const char c = text[i];
        if (ident_char(c)) {
          std::size_t end = i;
          while (end < text.size() && ident_char(text[end])) ++end;
          const std::string token = text.substr(i, end - i);
          // `enum class` opens an enumerator list, not an access scope.
          if (token == "class" && prev_token != "enum") pending = 0;
          if (token == "struct" && prev_token != "enum") pending = 1;
          // Access labels: the token must be followed by a lone ':'
          // (':' ':' is a qualified name like std::vector).
          if (end < text.size() && text[end] == ':' &&
              (end + 1 >= text.size() || text[end + 1] != ':')) {
            if (token == "public") is_public.back() = true;
            if (token == "private" || token == "protected") {
              is_public.back() = false;
            }
          }
          if (depth > 0 && adjacent && prev_token == "double" &&
              is_banned_name(token) && is_public.back()) {
            findings.push_back(
                {"typed-units", file, line_of(text, i),
                 "public parameter `double " + token +
                     "` in a src/" + dir +
                     " header; use the ncar::Quantity types "
                     "from common/quantity.hpp"});
          }
          prev_token = token;
          adjacent = true;
          i = end;
          continue;
        }
        if (c == '(') ++depth;
        if (c == ')') depth = depth > 0 ? depth - 1 : 0;
        if (c == '{') {
          is_public.push_back(pending == -1 ? is_public.back() : pending == 1);
          pending = -1;
        }
        if (c == '}' && is_public.size() > 1) is_public.pop_back();
        if (c == ';') pending = -1;  // forward declaration: no scope opened
        if (std::isspace(static_cast<unsigned char>(c)) == 0) {
          adjacent = false;  // punctuation breaks `double name` adjacency
        }
        ++i;
      }
    }
  }
  return findings;
}

std::vector<Finding> check_trace_category(const fs::path& root) {
  // Every charge_cycles / charge_seconds call in the simulator core must
  // name a trace::Category (or forward a `category` parameter): silently
  // defaulted charges pile up in the Other bucket of the attribution
  // tables. The argument list is the balanced-paren span after the call.
  std::vector<Finding> findings;
  for (const char* dir : {"sxs", "iosim"}) {
    std::vector<fs::path> files = collect(root / "src" / dir, ".cpp");
    const auto headers = collect(root / "src" / dir, ".hpp");
    files.insert(files.end(), headers.begin(), headers.end());
    for (const auto& file : files) {
      const std::string text = strip_comments_and_strings(read_file(file));
      for (const char* call : {"charge_cycles", "charge_seconds"}) {
        const std::size_t len = std::string(call).size();
        for (std::size_t pos = find_token(text, call, 0);
             pos != std::string::npos;
             pos = find_token(text, call, pos + 1)) {
          if (!is_call(text, pos, len)) continue;
          std::size_t open = text.find('(', pos + len);
          std::size_t close = open;
          int depth = 0;
          for (; close < text.size(); ++close) {
            if (text[close] == '(') ++depth;
            if (text[close] == ')' && --depth == 0) break;
          }
          const std::string args =
              text.substr(open + 1, close > open ? close - open - 1 : 0);
          if (has_token(args, "Category") || has_token(args, "category")) {
            continue;
          }
          findings.push_back({"trace-category", file, line_of(text, pos),
                              std::string(call) +
                                  " without a trace::Category; uncategorised "
                                  "charges degrade the attribution tables"});
        }
      }
    }
  }
  return findings;
}

void sort_and_dedupe(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
}

std::vector<Finding> lint_tree(const fs::path& root) {
  std::vector<Finding> all;
  for (auto* check : {check_bench_reporter, check_nondeterminism,
                      check_stdout, check_pragma_once, check_typed_units,
                      check_trace_category}) {
    auto found = check(root);
    all.insert(all.end(), found.begin(), found.end());
  }
  sort_and_dedupe(all);
  return all;
}

}  // namespace ncar::sxlint
