// sxlint driver: `sxlint <repo-root>` prints findings and exits non-zero
// when any rule fires. Run from CI and CTest over the repository itself.
#include <cstdio>
#include <filesystem>

#include "sxlint.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: sxlint <repo-root>\n");
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  if (!std::filesystem::is_directory(root)) {
    std::fprintf(stderr, "sxlint: not a directory: %s\n", argv[1]);
    return 2;
  }
  const auto findings = ncar::sxlint::lint_tree(root);
  for (const auto& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.string().c_str(), f.line,
                f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("sxlint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
