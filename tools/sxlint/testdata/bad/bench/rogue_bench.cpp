// A bench main that prints instead of using the BenchReporter harness:
// its numbers never reach the regression gate.
#include <cstdio>

int main() {
  std::printf("membw: %f MB/s\n", 123.4);
  return 0;
}
