#pragma once
// Fixture: publicly visible naked unit parameters in an iosim header.
// `double bytes` in the struct (public) and `double stall_seconds` after a
// public: label must both be flagged; the private `double seconds` must not.

struct XmuQueue {
  void enqueue(double bytes);  // flagged: struct scope is public
};

class DiskSpindle {
 public:
  void stall(double stall_seconds);  // flagged: public section

 private:
  void tick(double seconds);  // allowed: private helper
};
