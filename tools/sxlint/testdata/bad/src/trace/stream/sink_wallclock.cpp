// A streaming trace sink must never stamp records with host wall time:
// the .sxt byte-identity contract (chunks identical across runs and host
// thread policies) dies the moment a wall clock leaks into the stream.
#include <ctime>

namespace bad::stream {

double chunk_timestamp() {
  timespec ts{};
  clock_gettime(0, &ts);  // banned ident
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(std::time(nullptr));  // banned call
}

}  // namespace bad::stream
