#include <cstdio>

namespace bad {

void report(double mflops) { std::printf("%f\n", mflops); }

}  // namespace bad
