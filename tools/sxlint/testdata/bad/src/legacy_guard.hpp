#ifndef BAD_LEGACY_GUARD_HPP
#define BAD_LEGACY_GUARD_HPP

namespace bad {
struct Legacy {};
}  // namespace bad

#endif
