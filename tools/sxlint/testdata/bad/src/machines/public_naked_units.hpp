#pragma once

namespace bad::machines {

class Sweeper {
 public:
  // Public naked-unit parameter: must be ncar::Seconds.
  void budget(double max_seconds);

 private:
  // Private raw doubles are allowed; only the public one above is flagged.
  double spent_seconds_limit(double seconds) const;
};

}  // namespace bad::machines
