#pragma once

namespace bad::sxs {

class Channel {
 public:
  // Both parameters defeat the dimension system.
  double transfer(double bytes, double timeout_seconds) const;
};

}  // namespace bad::sxs
