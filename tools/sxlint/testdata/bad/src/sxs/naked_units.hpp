#pragma once

namespace bad::sxs {

class Channel {
 public:
  // All three parameters defeat the dimension system.
  double transfer(double bytes, double timeout_seconds) const;
  double rate(double flops) const;
};

}  // namespace bad::sxs
