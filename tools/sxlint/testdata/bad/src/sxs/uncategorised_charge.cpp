// Fixture: charges without a trace::Category — both must be flagged.
#include "fake.hpp"

namespace ncar::sxs {

void warm_up(Cpu& cpu) {
  cpu.charge_cycles(Cycles(100.0));
  cpu.charge_seconds(Seconds(1e-6));
}

}  // namespace ncar::sxs
