#include <cstdlib>
#include <ctime>

namespace bad {

double wall_seed() {
  // Both calls are banned in model code.
  std::srand(42);
  return static_cast<double>(std::time(nullptr)) + std::rand();
}

}  // namespace bad
