// The determinism-conformant shape of a streaming sink: every timestamp
// is model time handed in by the caller, epochs are plain counters, and
// the words "time" / "rand" appear only inside comments, strings, and
// longer identifiers — none of which the token-based scan may flag.
#include <cstdint>
#include <string>

namespace good::stream {

struct Sink {
  // Model time only: "start" is simulated ticks, never wall time, and
  // resets just bump a deterministic epoch (no srand-style reseeding).
  void record(double start, double duration) {
    last_end_time_bits_ = start + duration;  // token is not "time"
    ++records_;
  }
  void on_reset() { ++epoch_; }
  double runtime() const { return last_end_time_bits_; }
  std::string describe() const {
    return "sink: time() and rand() are banned here";  // string, not code
  }

  double last_end_time_bits_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace good::stream
