#include "clean_model.hpp"

#include <cstdio>

namespace good {

// "time(" in a comment and "std::rand()" in a string must not fire; nor
// may identifiers that merely contain banned names.
double runtime(double uptime_seconds_total) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s", "calls std::rand() and time(0)");
  double timer = uptime_seconds_total;  // local named around 'time'
  return timer + static_cast<double>(buf[0] != '\0');
}

}  // namespace good
