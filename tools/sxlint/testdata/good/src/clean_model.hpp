#pragma once

namespace good {
double runtime(double uptime_seconds_total);
}  // namespace good
