#pragma once
// Typed interface: quantities carry their dimension; `double seconds()` as
// a *method name* (depth 0) is allowed, parameters must be typed.

namespace good::sxs {

struct Seconds {
  double v;
};

class Clock {
 public:
  double seconds() const;
  void advance(Seconds by);
};

}  // namespace good::sxs
