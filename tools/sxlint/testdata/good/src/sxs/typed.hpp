#pragma once
// Typed interface: quantities carry their dimension; `double seconds()` as
// a *method name* (depth 0) is allowed, parameters must be typed.

namespace good::sxs {

struct Seconds {
  double v;
};

struct Flops {
  double v;
};

class Clock {
 public:
  double seconds() const;
  void advance(Seconds by);
  // Typed flop accounting, the cpu.hpp accessor pattern: `double flops()`
  // is a method name at depth 0, the parameter carries its dimension.
  double flops() const;
  void add_flops(Flops f);
};

}  // namespace good::sxs
