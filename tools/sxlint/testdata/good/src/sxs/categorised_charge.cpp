// Fixture: every charge names a category (or forwards one) — lints clean.
#include "fake.hpp"

namespace ncar::sxs {

void stage(Cpu& cpu, trace::Category category) {
  cpu.charge_cycles(Cycles(100.0), trace::Category::IoXmu);
  cpu.charge_seconds(Seconds(1e-6), category);
  // Not a call: mentioning the name without parens is fine.
  auto fn = &Cpu::charge_cycles;
  (void)fn;
}

}  // namespace ncar::sxs
