#pragma once
// Fixture: a clean iosim header under the widened typed-units scope.
// Public surface uses Quantity types; raw doubles stay private or are
// depth-0 field/method names, which the paren-depth heuristic must skip.

namespace ncar {
template <class Dim>
class Quantity;
namespace dim {
struct Bytes;
struct Seconds;
}  // namespace dim

class HippiChannel {
 public:
  void transfer(Quantity<dim::Bytes> payload);
  double seconds() const;  // method *name* at depth 0: allowed

 private:
  void account(double seconds);  // private helper: allowed
  double busy_seconds_ = 0.0;    // field at depth 0: allowed
};
}  // namespace ncar
