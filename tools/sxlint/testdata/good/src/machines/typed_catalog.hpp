#pragma once

namespace good::machines {

struct Seconds {
  double value = 0;
};

class Catalog {
 public:
  // Public surface uses quantity types and neutral parameter names.
  void set_budget(Seconds budget);
  double seconds() const;  // method *name* at depth 0: allowed
  double lookup(double fallback) const;

 private:
  // Private implementation detail: raw doubles stay legal here.
  double clamp_seconds(double seconds) const;
  double scale(double bytes, double flops) const;
};

// Struct fields are not parameters; depth 0 stays unflagged.
struct Replay {
  double seconds = 0;
  double hw_flops = 0;
};

enum class Kind { Vector, Scalar };  // `enum class` is not an access scope

}  // namespace good::machines
