// Minimal well-behaved bench: results go through the reporter.
struct BenchReporter {
  void metric(const char*, double, const char*) {}
};

int main() {
  BenchReporter reporter;
  reporter.metric("membw.mb_per_s", 123.4, "MB/s");
  return 0;
}
