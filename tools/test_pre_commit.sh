#!/usr/bin/env sh
# Fixture test for tools/pre-commit: the hook must judge the STAGED blobs,
# not the worktree. Builds a throwaway git repository and drives the hook
# through the four staged/worktree combinations:
#
#   1. staged misformatted, worktree fixed      -> hook FAILS
#   2. staged clean,        worktree mangled    -> hook PASSES
#   3. staged sxlint violation, worktree fixed  -> hook FAILS   (needs sxlint)
#   4. staged clean,        worktree violation  -> hook PASSES  (needs sxlint)
#
# Usage: test_pre_commit.sh <path-to-hook> [path-to-sxlint]
# Each pair needs its tool: 1-2 need clang-format, 3-4 need sxlint. Exits
# 77 (CTest SKIP_RETURN_CODE) when git is missing or no tool is available.

set -eu

hook=$1
sxlint=${2:-}

command -v git >/dev/null 2>&1 || { echo "SKIP: no git"; exit 77; }
have_clang_format=1
command -v clang-format >/dev/null 2>&1 || have_clang_format=0
if [ "$have_clang_format" = 0 ] && { [ -z "$sxlint" ] || [ ! -x "$sxlint" ]; }; then
  echo "SKIP: neither clang-format nor sxlint available"
  exit 77
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cd "$tmp"
git init -q .
git config user.email test@example.invalid
git config user.name "pre-commit fixture"
git commit -q --allow-empty -m init
printf 'BasedOnStyle: Google\n' > .clang-format
mkdir -p src/fixture

if [ "$have_clang_format" = 1 ]; then
  # --- 1. misformatted blob staged, worktree then fixed: must FAIL -----------
  printf 'int   main(   )   {return    0;}\n' > src/fixture/a.cpp
  git add .clang-format src/fixture/a.cpp
  clang-format -i src/fixture/a.cpp # worktree clean, index still bad
  if SXLINT= "$hook" >/dev/null 2>&1; then
    echo "FAIL: hook passed although the STAGED blob is misformatted"
    exit 1
  fi

  # --- 2. clean blob staged, worktree then mangled: must PASS ----------------
  git add src/fixture/a.cpp
  printf 'int   main(   )   {return    0;}\n' > src/fixture/a.cpp
  if ! SXLINT= "$hook" >/dev/null 2>&1; then
    echo "FAIL: hook failed although the STAGED blob is clean"
    exit 1
  fi
  git checkout -q -- src/fixture/a.cpp
else
  echo "note: clang-format not found, cases 1 and 2 not exercised"
fi

if [ -n "$sxlint" ] && [ -x "$sxlint" ]; then
  # --- 3. staged header missing #pragma once, worktree fixed: must FAIL ------
  printf '// fixture header without a pragma\n' > src/fixture/b.hpp
  git add src/fixture/b.hpp
  printf '#pragma once\n// fixture header\n' > src/fixture/b.hpp
  if SXLINT="$sxlint" "$hook" >/dev/null 2>&1; then
    echo "FAIL: hook passed although the STAGED header violates sxlint"
    exit 1
  fi

  # --- 4. staged header clean, worktree violation: must PASS -----------------
  git add src/fixture/b.hpp
  printf '// fixture header without a pragma\n' > src/fixture/b.hpp
  if ! SXLINT="$sxlint" "$hook" >/dev/null 2>&1; then
    echo "FAIL: hook failed although the STAGED header is clean"
    exit 1
  fi
else
  echo "note: sxlint not supplied, cases 3 and 4 not exercised"
fi

echo "PASS"
