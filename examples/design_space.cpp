// Example: design-space exploration over the machine catalog. Three acts:
//
//  1. Print the builtin catalog — every machine the library knows is a
//     plain-text description table (edit one line, get a new machine).
//  2. Rank the whole catalog (1996 fleet + the modern SX-Aurora / A64FX /
//     RVV design points) on a recorded RADABS probe.
//  3. Sweep pipes x port width around the SX-4/1 and show where the
//     kernel flips from memory-bound to compute-bound — the boundary the
//     paper's Table 1 samples at exactly five machines.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "machines/description.hpp"
#include "machines/sweep.hpp"
#include "sxs/execution_policy.hpp"

int main() {
  using namespace ncar;
  std::cout << "host execution: " << sxs::host_execution_summary()
            << "\n\n";

  // Act 1: machines are data.
  const machines::Catalog& catalog = machines::builtin_catalog();
  print_banner(std::cout, "The machine catalog (descriptions, not code)");
  std::cout << catalog.find("NEC SX-4/1")->to_table()
            << "\n(unset keys inherit the SX-4 product defaults; "
            << catalog.machines.size() << " machines in the catalog)\n\n";

  // Act 2: one recorded probe, replayed against every catalog machine.
  const machines::Probe probe = machines::record_probe("radabs");
  print_banner(std::cout, "The catalog on the RADABS probe");
  Table rank({"Machine", "Seconds", "HW Mflops"});
  for (const std::string& name : machines::builtin_names()) {
    const machines::Replay r =
        machines::replay_probe(probe, machines::spec_for(name));
    rank.add_row({name, machines::format_number(r.seconds),
                  std::to_string(static_cast<long>(
                      r.seconds > 0 ? r.hw_flops / r.seconds / 1e6 : 0))});
  }
  rank.print(std::cout);

  // Act 3: a small sweep around the SX-4/1, printed as a bound-class map.
  const machines::Grid grid(catalog.at("NEC SX-4/1"),
                            {{"pipes_per_group", {1, 2, 4, 8, 16, 32}},
                             {"port_bytes_per_clock", {16, 32, 64, 128, 256}}});
  machines::SweepOptions opts;
  opts.kernel = "radabs";
  const machines::SweepReport rep = machines::run_sweep(grid, opts);

  std::printf("\n");
  print_banner(std::cout, "Memory-bound (M) vs compute-bound (C) map");
  std::printf("%24s", "port bytes/clock:");
  for (const double port : grid.axes()[1].values) {
    std::printf(" %5.0f", port);
  }
  std::printf("\n");
  for (std::size_t p = 0; p < grid.axes()[0].values.size(); ++p) {
    std::printf("%18s %4.0f ", "pipes:", grid.axes()[0].values[p]);
    for (std::size_t w = 0; w < grid.axes()[1].values.size(); ++w) {
      const auto& point =
          rep.points[p + w * grid.axes()[0].values.size()];
      std::printf(" %5s",
                  !point.valid ? "-" : point.memory_bound ? "M" : "C");
    }
    std::printf("\n");
  }
  std::printf(
      "\n%zu of %zu points memory-bound, %zu flip edges — widen the port "
      "or add pipes and the bound class changes.\n",
      rep.memory_bound_count(), rep.valid_count(), rep.flips.size());
  return 0;
}
