// Example: a small climate campaign — the workload the paper's
// introduction motivates ("long running, dedicated climate simulations").
//
// Runs a 5-day CCM2-like simulation at T42L18 on the full SX-4/32 model,
// writing daily history volumes through the disk subsystem, then reports
// physical diagnostics and the machine-model performance summary.

#include <cstdio>

#include "ccm2/model.hpp"
#include "common/units.hpp"
#include "iosim/disk.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main() {
  using namespace ncar;
  std::printf("host execution: %s\n\n", sxs::host_execution_summary().c_str());

  const auto machine = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(machine);
  iosim::DiskSystem disk;

  ccm2::Ccm2Config cfg;
  cfg.res = ccm2::t42l18();
  ccm2::Ccm2 model(cfg, node);

  std::printf("machine : %s\n", machine.name.c_str());
  std::printf("model   : CCM2-like, %s (%d x %d x %d, dt=%.0f s)\n",
              cfg.res.name.c_str(), cfg.res.nlat, cfg.res.nlon, cfg.res.nlev,
              cfg.res.dt_seconds);

  const int days = 5;
  const int ncpu = 32;
  double compute_s = 0, io_s = 0;
  const double e0 = model.energy();
  const double q0 = model.moisture_mass(0);

  for (int day = 1; day <= days; ++day) {
    for (long s = 0; s < cfg.res.steps_per_day(); ++s) {
      compute_s += model.step(ncpu).total;
    }
    io_s += model.write_history(disk, ncpu).value();
    std::printf("day %d: energy %.4e, moisture %.6f, simulated so far %s\n",
                day, model.energy(), model.moisture_mass(0),
                format_duration(compute_s + io_s).c_str());
  }

  std::printf("\n--- campaign summary -------------------------------------\n");
  std::printf("compute time (simulated): %s\n",
              format_duration(compute_s).c_str());
  std::printf("history I/O  (simulated): %s for %.1f MB/day\n",
              format_duration(io_s).c_str(), model.history_bytes().value() / 1e6);
  double flops = 0;
  for (int r = 0; r < node.cpu_count(); ++r) {
    flops += node.cpu(r).equiv_flops().value();
  }
  std::printf("sustained: %.2f Cray-equivalent Gflops on %d CPUs\n",
              flops / compute_s / 1e9, ncpu);
  std::printf("energy drift: %+.3f%%, moisture drift: %+.3f%%\n",
              100 * (model.energy() / e0 - 1.0),
              100 * (model.moisture_mass(0) / q0 - 1.0));
  return 0;
}
