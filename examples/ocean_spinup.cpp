// Example: spinning up the MOM ocean model at the porting/verification
// resolution (3 degrees, 25 levels — the configuration the paper says "can
// be used for purposes of familiarization and porting verification", ~40
// timesteps), while watching the rigid-lid solver and the physics.

#include <cstdio>

#include "common/units.hpp"
#include "ocean/mom.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main() {
  using namespace ncar;
  std::printf("host execution: %s\n\n", sxs::host_execution_summary().c_str());

  sxs::Node node(sxs::MachineConfig::sx4_benchmarked());
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);

  std::printf("MOM low resolution: %d x %d x %d, %.0f%% ocean\n",
              mom.config().nlon, mom.config().nlat, mom.config().nlev,
              100 * mom.mask().ocean_fraction());
  std::printf("block imbalance at 16 CPUs: %.2f\n\n",
              mom.mask().block_imbalance(16));

  const int ncpu = 16;
  double elapsed = 0;
  for (int s = 1; s <= 40; ++s) {
    elapsed += mom.step(ncpu);
    if (s % 10 == 0) {
      std::printf("step %2d: mean T %.3f C, S %.3f psu, KE %.3e, "
                  "SOR residual %.2e, columns stable: %s\n",
                  s, mom.mean_temperature(), mom.mean_salinity(),
                  mom.barotropic_ke(), mom.last_sor_residual(),
                  mom.columns_statically_stable() ? "yes" : "NO");
    }
  }

  std::printf("\n40 steps on %d CPUs: %s simulated "
              "(the paper: 'a few minutes of CPU time on a fast workstation')\n",
              ncpu, format_duration(elapsed).c_str());
  return 0;
}
