// Quickstart: build an SX-4 model, charge a simple DAXPY-style loop against
// one CPU, and run the same loop as a 32-CPU macrotasked parallel region.
//
// This demonstrates the two core ideas of the library:
//   1. kernels do real numerics on host arrays;
//   2. timing comes from the SX-4 performance model, in simulated seconds.

#include <cstdio>
#include <vector>

#include "common/units.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main() {
  using namespace ncar;
  std::printf("host execution: %s\n\n", sxs::host_execution_summary().c_str());

  // The machine the paper benchmarked: SX-4/32 with the 9.2 ns clock.
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(cfg);

  std::printf("machine: %s\n", cfg.name.c_str());
  std::printf("peak per CPU: %.2f Gflops\n",
              to_gflops(cfg.peak_flops_per_cpu()));

  // y = a*x + y over 10 million elements — real numerics on the host.
  const long n = 10'000'000;
  std::vector<double> x(n, 1.5), y(n, 0.25);
  const double a = 3.0;

  auto daxpy = [&](long lo, long hi, sxs::Cpu& cpu) {
    for (long i = lo; i < hi; ++i) y[i] += a * x[i];
    sxs::VectorOp op;
    op.n = hi - lo;
    op.flops_per_elem = 2;   // multiply + add, chained
    op.load_words = 2;       // x and y
    op.store_words = 1;      // y
    op.pipe_groups = 2;
    cpu.vec(op);
  };

  // Single CPU.
  double t1 = node.serial([&](sxs::Cpu& cpu) { daxpy(0, n, cpu); });
  std::printf("1 CPU : %8.3f ms simulated, %7.1f Mflops\n", t1 * 1e3,
              to_mflops(2.0 * n / t1));

  // All 32 CPUs, block-partitioned, one barrier at the end.
  const int p = cfg.cpus_per_node;
  double tp = node.parallel(p, [&](int rank, sxs::Cpu& cpu) {
    const long lo = n * rank / p;
    const long hi = n * (rank + 1) / p;
    daxpy(lo, hi, cpu);
  });
  std::printf("%d CPU: %8.3f ms simulated, %7.1f Mflops (speedup %.1fx)\n", p,
              tp * 1e3, to_mflops(2.0 * n / tp), t1 / tp);

  // Sanity: the numerics really ran (twice: serial then parallel pass).
  std::printf("y[0] = %.4f (expect %.4f)\n", y[0], 0.25 + 2 * a * 1.5);
  return 0;
}
