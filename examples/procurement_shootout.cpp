// Example: a procurement-style machine comparison — the activity that
// produced the paper. A user-defined kernel (here: a moist-thermodynamics
// column update with the suite's intrinsic mix) is charged against every
// machine model in the library, and the resulting ranking is printed next
// to each machine's HINT score to reproduce the paper's section 3 lesson:
// a single synthetic metric can rank machines opposite to your workload.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "hint/hint.hpp"
#include "machines/comparator.hpp"
#include "sxs/execution_policy.hpp"

namespace {

/// A user workload: column thermodynamics over ncol columns, nlev levels.
void run_workload(ncar::machines::Comparator& m, long ncol, int nlev) {
  using ncar::sxs::Intrinsic;
  for (int k = 0; k < nlev; ++k) {
    ncar::sxs::VectorOp body;
    body.n = ncol;
    body.flops_per_elem = 18;
    body.load_words = 5;
    body.store_words = 2;
    m.vec(body);
    m.intrinsic(Intrinsic::Exp, ncol);   // saturation vapour pressure
    m.intrinsic(Intrinsic::Log, ncol);   // potential temperature
    m.intrinsic(Intrinsic::Sqrt, ncol);  // stability functions
  }
}

}  // namespace

int main() {
  using namespace ncar;
  std::cout << "host execution: " << sxs::host_execution_summary()
            << "\n\n";
  using machines::Comparator;

  struct Entry {
    const char* name;
    machines::Spec spec;
  };
  std::vector<Entry> machines = {
      {"NEC SX-4/1", Comparator::nec_sx4_single()},
      {"CRI Y-MP", Comparator::cray_ymp()},
      {"CRI J90", Comparator::cray_j90()},
      {"IBM RS6000/590", Comparator::ibm_rs6000_590()},
      {"SUN Sparc20", Comparator::sun_sparc20()},
  };

  print_banner(std::cout, "Procurement shootout: column thermodynamics");
  Table t({"Machine", "Workload Mflops", "HINT MQUIPS", "Workload rank",
           "HINT rank"});

  struct Score {
    const char* name;
    double mflops;
    double mquips;
  };
  std::vector<Score> scores;
  for (auto& e : machines) {
    Comparator m(e.spec);
    run_workload(m, 2048, 18);
    const double mflops = m.equiv_flops().value() / m.seconds().value() / 1e6;
    Comparator h(e.spec);
    const double mquips = hint::run_hint(h, 50'000).mquips;
    scores.push_back({e.name, mflops, mquips});
  }
  auto rank_of = [&](double v, auto field) {
    int r = 1;
    for (const auto& s : scores) {
      if (field(s) > v) ++r;
    }
    return r;
  };
  for (const auto& s : scores) {
    t.add_row({s.name, format_fixed(s.mflops, 1), format_fixed(s.mquips, 1),
               std::to_string(rank_of(s.mflops, [](const Score& x) { return x.mflops; })),
               std::to_string(rank_of(s.mquips, [](const Score& x) { return x.mquips; }))});
  }
  t.print(std::cout);

  std::printf("\nThe paper's section 3 lesson: the HINT ranking and the\n"
              "workload ranking disagree — benchmark the workload you run.\n");
  return 0;
}
